"""Convolutional coding for the 802.11 OFDM PHY.

Implements the standard's rate-1/2 K=7 code with generators (133, 171)
octal, puncturing to rates 2/3 and 3/4, and a hard-decision Viterbi decoder.

Punctured (stolen) bits are depunctured as erasures: both branch hypotheses
get zero metric for that position.

Performance
-----------
This module is the hottest code in every Monte-Carlo BER sweep, so both
directions are built as a fast path:

* :func:`conv_encode` is fully vectorised: the code is linear, so each
  mother-code output bit is the XOR of a fixed set of shifted copies of
  the input — no per-bit Python loop.
* :func:`viterbi_decode` precomputes *all* branch metrics for the whole
  frame in one vectorised pass (``(n_bits, 64)`` arrays), leaving only the
  add-compare-select recurrence sequential; when a C compiler is available
  the ACS loop itself runs in a small compiled kernel
  (:mod:`repro.phy._viterbi_kernel`), which is ~30× faster again.
* Depuncture keep-masks are cached per ``(rate, n_bits)``.

The original per-bit implementations are retained as
:func:`conv_encode_reference` / :func:`viterbi_decode_reference`; property
tests assert the fast paths are bit-exact against them (including the
tie-breaking behaviour: on equal path metrics the first predecessor wins,
and the untied traceback starts from the first minimum-metric state).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.phy import _viterbi_kernel

__all__ = [
    "CodeRate",
    "RATE_1_2",
    "RATE_2_3",
    "RATE_3_4",
    "conv_encode",
    "viterbi_decode",
    "conv_encode_reference",
    "viterbi_decode_reference",
    "CONSTRAINT_LENGTH",
]

CONSTRAINT_LENGTH = 7
_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)  # 64
_G0 = 0o133
_G1 = 0o171


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def _build_tables():
    """Per (state, input-bit): next state and the two output bits."""
    next_state = np.empty((_NUM_STATES, 2), dtype=np.int64)
    outputs = np.empty((_NUM_STATES, 2, 2), dtype=np.uint8)
    for state in range(_NUM_STATES):
        for bit in range(2):
            # Shift register holds [newest ... oldest]; full register value
            # for the generator dot products is bit followed by state bits.
            register = (bit << (CONSTRAINT_LENGTH - 1)) | state
            out0 = _parity(register & _G0)
            out1 = _parity(register & _G1)
            next_state[state, bit] = register >> 1
            outputs[state, bit, 0] = out0
            outputs[state, bit, 1] = out1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()

# Predecessor tables for the vectorised Viterbi: for each state s, the two
# (previous-state, input-bit) pairs that can reach s.
_PREV_STATE = np.empty((_NUM_STATES, 2), dtype=np.int64)
_PREV_BIT = np.empty((_NUM_STATES, 2), dtype=np.int64)
for _s in range(_NUM_STATES):
    _found = 0
    for _p in range(_NUM_STATES):
        for _b in range(2):
            if _NEXT_STATE[_p, _b] == _s:
                _PREV_STATE[_s, _found] = _p
                _PREV_BIT[_s, _found] = _b
                _found += 1
    assert _found == 2

# Output pair value (2·out0 + out1) along each predecessor branch, and the
# four possible received pairs — the whole frame's branch metrics reduce to
# a (n_bits, 4) pair-cost table gathered through these indices.
_EDGE_PAIR = (
    2 * _OUTPUTS[_PREV_STATE, _PREV_BIT, 0] + _OUTPUTS[_PREV_STATE, _PREV_BIT, 1]
).astype(np.uint8)  # (64, 2)
_PAIR_PATTERNS = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)

# Plain-int copies for the traceback loop (scalar indexing of Python lists
# is several times faster than scalar indexing of numpy arrays).
_PREV_STATE_LIST = [tuple(int(x) for x in row) for row in _PREV_STATE]
_PREV_BIT_LIST = [tuple(int(x) for x in row) for row in _PREV_BIT]

# Contiguous tables in the layout the C kernel expects.
_PREV_STATE_I32 = np.ascontiguousarray(_PREV_STATE, dtype=np.int32)
_PREV_BIT_I32 = np.ascontiguousarray(_PREV_BIT, dtype=np.int32)
_EDGE_PAIR_C = np.ascontiguousarray(_EDGE_PAIR)

# Mother-code generator taps as shift offsets into a zero-padded input:
# output bit i of generator g is the XOR of padded[p : p + n] over the set
# bit positions p of g (position 6 = the newest input bit).
_GENERATOR_TAPS = tuple(
    tuple(p for p in range(CONSTRAINT_LENGTH) if (g >> p) & 1) for g in (_G0, _G1)
)

_CKERNEL = _viterbi_kernel.load()


@dataclass(frozen=True)
class CodeRate:
    """A puncturing pattern over the mother rate-1/2 code.

    ``pattern`` marks which of the mother-code output bits are transmitted
    within one puncturing period (row 0: first output, row 1: second).
    """

    name: str
    numerator: int
    denominator: int
    pattern: np.ndarray

    @property
    def ratio(self) -> float:
        """Information bits per coded bit (e.g. 0.75 for rate 3/4)."""
        return self.numerator / self.denominator

    def coded_bits(self, data_bits: int) -> int:
        """Number of transmitted coded bits for ``data_bits`` input bits.

        Only defined when ``data_bits`` is a multiple of the puncturing
        period (always true for whole OFDM symbols).
        """
        period = self.pattern.shape[1]
        if data_bits % period != 0:
            raise ValueError(
                f"data length {data_bits} not a multiple of puncture period {period}"
            )
        kept_per_period = int(self.pattern.sum())
        return (data_bits // period) * kept_per_period


RATE_1_2 = CodeRate("1/2", 1, 2, np.array([[1], [1]], dtype=np.uint8))
RATE_2_3 = CodeRate("2/3", 2, 3, np.array([[1, 1], [1, 0]], dtype=np.uint8))
RATE_3_4 = CodeRate("3/4", 3, 4, np.array([[1, 1, 0], [1, 0, 1]], dtype=np.uint8))


@lru_cache(maxsize=None)
def _keep_tables(pattern_bytes: bytes, period: int, data_bits: int):
    """Cached depuncture tables for one ``(rate, n_bits)`` combination.

    Returns ``(kept_flat_indices, mask)`` where ``kept_flat_indices`` are
    the positions of transmitted bits within the flattened (data_bits, 2)
    mother grid and ``mask`` is the (read-only) non-erasure boolean grid.
    """
    pattern = np.frombuffer(pattern_bytes, dtype=np.uint8).reshape(2, period)
    keep = np.tile(pattern.T, (data_bits // period, 1)).astype(bool)
    mask = keep.reshape(data_bits, 2)
    mask.setflags(write=False)
    kept = np.nonzero(mask.reshape(-1))[0]
    kept.setflags(write=False)
    return kept, mask


def _keep(rate: CodeRate, data_bits: int):
    return _keep_tables(rate.pattern.tobytes(), rate.pattern.shape[1], data_bits)


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------

def conv_encode(bits: np.ndarray, rate: CodeRate = RATE_1_2) -> np.ndarray:
    """Encode ``bits`` with the K=7 (133,171) code, then puncture to ``rate``.

    The caller is responsible for appending tail bits (six zeros) if trellis
    termination is desired; the SIG/A-HDR builders in this package do so.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    period = rate.pattern.shape[1]
    if n % period != 0:
        raise ValueError(
            f"input length {n} not a multiple of puncture period {period}"
        )
    # The code is linear over GF(2) with zero initial state, so each output
    # stream is the XOR of shifted copies of the (zero-padded) input.
    padded = np.zeros(n + CONSTRAINT_LENGTH - 1, dtype=np.uint8)
    padded[CONSTRAINT_LENGTH - 1 :] = bits
    mother = np.empty((n, 2), dtype=np.uint8)
    for column, taps in enumerate(_GENERATOR_TAPS):
        acc = padded[taps[0] : taps[0] + n].copy()
        for p in taps[1:]:
            acc ^= padded[p : p + n]
        mother[:, column] = acc
    kept, _mask = _keep(rate, n)
    return mother.reshape(-1)[kept]


def conv_encode_reference(bits: np.ndarray, rate: CodeRate = RATE_1_2) -> np.ndarray:
    """The original per-bit table-walk encoder (kept as a test oracle)."""
    bits = np.asarray(bits, dtype=np.uint8)
    state = 0
    mother = np.empty((bits.size, 2), dtype=np.uint8)
    for i, bit in enumerate(bits):
        mother[i, 0] = _OUTPUTS[state, bit, 0]
        mother[i, 1] = _OUTPUTS[state, bit, 1]
        state = _NEXT_STATE[state, bit]
    period = rate.pattern.shape[1]
    if bits.size % period != 0:
        raise ValueError(
            f"input length {bits.size} not a multiple of puncture period {period}"
        )
    keep = np.tile(rate.pattern.T, (bits.size // period, 1)).astype(bool)
    return mother[keep.reshape(bits.size, 2)].reshape(-1)


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------

def _depuncture(coded: np.ndarray, rate: CodeRate, data_bits: int):
    """Expand punctured bits back to the mother-code grid with an erasure mask."""
    kept, mask = _keep(rate, data_bits)
    grid = np.zeros(data_bits * 2, dtype=np.uint8)
    grid[kept] = coded
    return grid.reshape(data_bits, 2), mask


def viterbi_decode(
    coded: np.ndarray,
    data_bits: int,
    rate: CodeRate = RATE_1_2,
    terminated: bool = True,
) -> np.ndarray:
    """Hard-decision Viterbi decode of ``coded`` back to ``data_bits`` bits.

    Args:
        coded: Received (possibly punctured) coded bits, 0/1.
        data_bits: Number of information bits to recover (including any tail
            bits the transmitter appended).
        rate: Puncturing pattern used at the transmitter.
        terminated: If True, assume the encoder ended in state 0 (tail bits
            present) and force the traceback to start there.

    Dispatches to the compiled ACS kernel when available, otherwise to the
    vectorised NumPy implementation; both are bit-exact with
    :func:`viterbi_decode_reference`.
    """
    coded = np.ascontiguousarray(coded, dtype=np.uint8)
    expected = rate.coded_bits(data_bits)
    if coded.size != expected:
        raise ValueError(f"expected {expected} coded bits, got {coded.size}")
    grid, mask = _depuncture(coded, rate, data_bits)
    if _CKERNEL is not None:
        return _viterbi_decode_c(grid, mask, data_bits, terminated)
    return _viterbi_decode_numpy(grid, mask, data_bits, terminated)


def _viterbi_decode_c(grid, mask, data_bits, terminated):
    survivors = np.empty((data_bits, _NUM_STATES), dtype=np.uint8)
    decoded = np.empty(data_bits, dtype=np.uint8)
    mask_u8 = np.ascontiguousarray(mask, dtype=np.uint8)
    _CKERNEL(
        np.ascontiguousarray(grid),
        mask_u8,
        data_bits,
        _PREV_STATE_I32,
        _PREV_BIT_I32,
        _EDGE_PAIR_C,
        int(bool(terminated)),
        survivors,
        decoded,
    )
    return decoded


def _viterbi_decode_numpy(grid, mask, data_bits, terminated):
    """Vectorised NumPy decoder: all branch metrics precomputed up front.

    The only remaining sequential work is the add-compare-select recurrence
    (five small NumPy calls per bit) and the integer traceback.
    """
    # Pair costs: for every bit time, the hamming distance of the received
    # (possibly erased) pair against each of the four candidate outputs.
    cost = ((grid[:, None, :] != _PAIR_PATTERNS[None, :, :]) & mask[:, None, :]).sum(
        axis=2, dtype=np.uint8
    )
    # Branch metrics along each state's two predecessor edges: (n_bits, 64).
    # uint8 keeps the tables small; the per-step add upcasts to float64,
    # matching the reference decoder's metric arithmetic exactly.
    bm0 = cost[:, _EDGE_PAIR[:, 0]]
    bm1 = cost[:, _EDGE_PAIR[:, 1]]

    prev0 = _PREV_STATE[:, 0]
    prev1 = _PREV_STATE[:, 1]
    metrics = np.full(_NUM_STATES, np.float64(1e18))
    metrics[0] = 0.0
    survivors = np.empty((data_bits, _NUM_STATES), dtype=np.uint8)

    for i in range(data_bits):
        cand0 = metrics[prev0] + bm0[i]
        cand1 = metrics[prev1] + bm1[i]
        choose1 = cand1 < cand0
        metrics = np.where(choose1, cand1, cand0)
        survivors[i] = choose1

    state = 0 if terminated else int(np.argmin(metrics))
    decoded = np.empty(data_bits, dtype=np.uint8)
    for i in range(data_bits - 1, -1, -1):
        which = survivors[i, state]
        decoded[i] = _PREV_BIT_LIST[state][which]
        state = _PREV_STATE_LIST[state][which]
    return decoded


def viterbi_decode_reference(
    coded: np.ndarray,
    data_bits: int,
    rate: CodeRate = RATE_1_2,
    terminated: bool = True,
) -> np.ndarray:
    """The original per-bit decoder (kept as a bit-exactness test oracle)."""
    coded = np.asarray(coded, dtype=np.uint8)
    expected = rate.coded_bits(data_bits)
    if coded.size != expected:
        raise ValueError(f"expected {expected} coded bits, got {coded.size}")
    grid, mask = _depuncture(coded, rate, data_bits)

    inf = np.float64(1e18)
    metrics = np.full(_NUM_STATES, inf)
    metrics[0] = 0.0
    survivors = np.empty((data_bits, _NUM_STATES), dtype=np.uint8)

    # Branch metrics: hamming distance between received pair and the branch
    # output, counting only non-erased positions.
    prev0 = _PREV_STATE[:, 0]
    prev1 = _PREV_STATE[:, 1]
    bit0 = _PREV_BIT[:, 0]
    bit1 = _PREV_BIT[:, 1]
    out0 = _OUTPUTS[prev0, bit0]  # (64, 2) outputs along first predecessor
    out1 = _OUTPUTS[prev1, bit1]

    for i in range(data_bits):
        rx = grid[i]
        ok = mask[i]
        bm0 = ((out0 != rx) & ok).sum(axis=1)
        bm1 = ((out1 != rx) & ok).sum(axis=1)
        cand0 = metrics[prev0] + bm0
        cand1 = metrics[prev1] + bm1
        choose1 = cand1 < cand0
        metrics = np.where(choose1, cand1, cand0)
        survivors[i] = choose1.astype(np.uint8)

    state = 0 if terminated else int(np.argmin(metrics))
    decoded = np.empty(data_bits, dtype=np.uint8)
    for i in range(data_bits - 1, -1, -1):
        which = survivors[i, state]
        decoded[i] = _PREV_BIT[state, which]
        state = _PREV_STATE[state, which]
    return decoded
