"""Convolutional coding for the 802.11 OFDM PHY.

Implements the standard's rate-1/2 K=7 code with generators (133, 171)
octal, puncturing to rates 2/3 and 3/4, and a hard-decision Viterbi decoder.
The decoder is vectorised across the 64 trellis states per step, which keeps
pure-Python overhead to one loop over bits.

Punctured (stolen) bits are depunctured as erasures: both branch hypotheses
get zero metric for that position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CodeRate",
    "RATE_1_2",
    "RATE_2_3",
    "RATE_3_4",
    "conv_encode",
    "viterbi_decode",
    "CONSTRAINT_LENGTH",
]

CONSTRAINT_LENGTH = 7
_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)  # 64
_G0 = 0o133
_G1 = 0o171


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def _build_tables():
    """Per (state, input-bit): next state and the two output bits."""
    next_state = np.empty((_NUM_STATES, 2), dtype=np.int64)
    outputs = np.empty((_NUM_STATES, 2, 2), dtype=np.uint8)
    for state in range(_NUM_STATES):
        for bit in range(2):
            # Shift register holds [newest ... oldest]; full register value
            # for the generator dot products is bit followed by state bits.
            register = (bit << (CONSTRAINT_LENGTH - 1)) | state
            out0 = _parity(register & _G0)
            out1 = _parity(register & _G1)
            next_state[state, bit] = register >> 1
            outputs[state, bit, 0] = out0
            outputs[state, bit, 1] = out1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()

# Predecessor tables for the vectorised Viterbi: for each state s, the two
# (previous-state, input-bit) pairs that can reach s.
_PREV_STATE = np.empty((_NUM_STATES, 2), dtype=np.int64)
_PREV_BIT = np.empty((_NUM_STATES, 2), dtype=np.int64)
for _s in range(_NUM_STATES):
    _found = 0
    for _p in range(_NUM_STATES):
        for _b in range(2):
            if _NEXT_STATE[_p, _b] == _s:
                _PREV_STATE[_s, _found] = _p
                _PREV_BIT[_s, _found] = _b
                _found += 1
    assert _found == 2


@dataclass(frozen=True)
class CodeRate:
    """A puncturing pattern over the mother rate-1/2 code.

    ``pattern`` marks which of the mother-code output bits are transmitted
    within one puncturing period (row 0: first output, row 1: second).
    """

    name: str
    numerator: int
    denominator: int
    pattern: np.ndarray

    @property
    def ratio(self) -> float:
        """Information bits per coded bit (e.g. 0.75 for rate 3/4)."""
        return self.numerator / self.denominator

    def coded_bits(self, data_bits: int) -> int:
        """Number of transmitted coded bits for ``data_bits`` input bits.

        Only defined when ``data_bits`` is a multiple of the puncturing
        period (always true for whole OFDM symbols).
        """
        period = self.pattern.shape[1]
        if data_bits % period != 0:
            raise ValueError(
                f"data length {data_bits} not a multiple of puncture period {period}"
            )
        kept_per_period = int(self.pattern.sum())
        return (data_bits // period) * kept_per_period


RATE_1_2 = CodeRate("1/2", 1, 2, np.array([[1], [1]], dtype=np.uint8))
RATE_2_3 = CodeRate("2/3", 2, 3, np.array([[1, 1], [1, 0]], dtype=np.uint8))
RATE_3_4 = CodeRate("3/4", 3, 4, np.array([[1, 1, 0], [1, 0, 1]], dtype=np.uint8))


def conv_encode(bits: np.ndarray, rate: CodeRate = RATE_1_2) -> np.ndarray:
    """Encode ``bits`` with the K=7 (133,171) code, then puncture to ``rate``.

    The caller is responsible for appending tail bits (six zeros) if trellis
    termination is desired; the SIG/A-HDR builders in this package do so.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    state = 0
    mother = np.empty((bits.size, 2), dtype=np.uint8)
    for i, bit in enumerate(bits):
        mother[i, 0] = _OUTPUTS[state, bit, 0]
        mother[i, 1] = _OUTPUTS[state, bit, 1]
        state = _NEXT_STATE[state, bit]
    period = rate.pattern.shape[1]
    if bits.size % period != 0:
        raise ValueError(
            f"input length {bits.size} not a multiple of puncture period {period}"
        )
    keep = np.tile(rate.pattern.T, (bits.size // period, 1)).astype(bool)
    return mother[keep.reshape(bits.size, 2)].reshape(-1)


def _depuncture(coded: np.ndarray, rate: CodeRate, data_bits: int):
    """Expand punctured bits back to the mother-code grid with an erasure mask."""
    period = rate.pattern.shape[1]
    keep = np.tile(rate.pattern.T, (data_bits // period, 1)).astype(bool)
    grid = np.zeros((data_bits, 2), dtype=np.uint8)
    mask = np.zeros((data_bits, 2), dtype=bool)
    flat_keep = keep.reshape(-1)
    grid_flat = grid.reshape(-1)
    mask_flat = mask.reshape(-1)
    grid_flat[np.nonzero(flat_keep)[0]] = coded
    mask_flat[np.nonzero(flat_keep)[0]] = True
    return grid, mask


def viterbi_decode(
    coded: np.ndarray,
    data_bits: int,
    rate: CodeRate = RATE_1_2,
    terminated: bool = True,
) -> np.ndarray:
    """Hard-decision Viterbi decode of ``coded`` back to ``data_bits`` bits.

    Args:
        coded: Received (possibly punctured) coded bits, 0/1.
        data_bits: Number of information bits to recover (including any tail
            bits the transmitter appended).
        rate: Puncturing pattern used at the transmitter.
        terminated: If True, assume the encoder ended in state 0 (tail bits
            present) and force the traceback to start there.
    """
    coded = np.asarray(coded, dtype=np.uint8)
    expected = rate.coded_bits(data_bits)
    if coded.size != expected:
        raise ValueError(f"expected {expected} coded bits, got {coded.size}")
    grid, mask = _depuncture(coded, rate, data_bits)

    inf = np.float64(1e18)
    metrics = np.full(_NUM_STATES, inf)
    metrics[0] = 0.0
    survivors = np.empty((data_bits, _NUM_STATES), dtype=np.uint8)

    # Branch metrics: hamming distance between received pair and the branch
    # output, counting only non-erased positions.
    prev0 = _PREV_STATE[:, 0]
    prev1 = _PREV_STATE[:, 1]
    bit0 = _PREV_BIT[:, 0]
    bit1 = _PREV_BIT[:, 1]
    out0 = _OUTPUTS[prev0, bit0]  # (64, 2) outputs along first predecessor
    out1 = _OUTPUTS[prev1, bit1]

    for i in range(data_bits):
        rx = grid[i]
        ok = mask[i]
        bm0 = ((out0 != rx) & ok).sum(axis=1)
        bm1 = ((out1 != rx) & ok).sum(axis=1)
        cand0 = metrics[prev0] + bm0
        cand1 = metrics[prev1] + bm1
        choose1 = cand1 < cand0
        metrics = np.where(choose1, cand1, cand0)
        survivors[i] = choose1.astype(np.uint8)

    state = 0 if terminated else int(np.argmin(metrics))
    decoded = np.empty(data_bits, dtype=np.uint8)
    for i in range(data_bits - 1, -1, -1):
        which = survivors[i, state]
        decoded[i] = _PREV_BIT[state, which]
        state = _PREV_STATE[state, which]
    return decoded
