"""Payload bit processing: bytes ⇄ per-OFDM-symbol bit matrices ⇄ symbols.

Two operating modes:

* **coded** — the full 802.11 chain: 16-bit SERVICE prefix, scramble,
   6 tail bits, pad to a whole symbol, convolutional-encode, per-symbol
  interleave. This is what frame-level transport (MAC payloads, A-HDR,
  SIG) uses.
* **uncoded** — raw bits mapped straight onto constellations. This is the
  mode the paper's BER experiments report (raw symbol BER vs. symbol index
  and vs. power), and the granularity at which the phase-offset side channel
  attaches a CRC to each symbol.

All functions work on "bit matrices": shape (n_symbols, bits_per_symbol)
uint8 arrays, one row per OFDM symbol.
"""

from __future__ import annotations

import numpy as np

from repro.phy.coding import conv_encode, viterbi_decode
from repro.phy.interleaver import deinterleave_block, interleave_block
from repro.phy.mcs import Mcs
from repro.phy.ofdm import DATA_POSITIONS, PILOT_POSITIONS
from repro.phy.pilots import pilot_reference_matrix
from repro.phy.scrambler import descramble, scramble
from repro.util.bits import bits_to_bytes, bytes_to_bits

__all__ = [
    "SERVICE_BITS",
    "TAIL_BITS",
    "num_payload_symbols",
    "encode_payload_bits",
    "decode_payload_bits",
    "bits_to_symbols",
    "symbols_to_bits",
]

SERVICE_BITS = 16
TAIL_BITS = 6


def num_payload_symbols(payload_bytes: int, mcs: Mcs, coded: bool = True) -> int:
    """Number of OFDM symbols needed for a payload of ``payload_bytes``."""
    if payload_bytes <= 0:
        raise ValueError("payload must be non-empty")
    if coded:
        total_bits = SERVICE_BITS + 8 * payload_bytes + TAIL_BITS
        per_symbol = mcs.data_bits_per_symbol
    else:
        total_bits = 8 * payload_bytes
        per_symbol = mcs.coded_bits_per_symbol
    return -(-total_bits // per_symbol)


def encode_payload_bits(payload: bytes, mcs: Mcs, coded: bool = True,
                        scrambler_seed: int = 0b1011101) -> np.ndarray:
    """Encode payload bytes into a per-symbol bit matrix ready for mapping.

    Returns shape (n_symbols, N_CBPS) — the bits that land on the data
    subcarriers of each OFDM symbol, after scrambling/coding/interleaving
    in coded mode, or the zero-padded raw bits in uncoded mode.
    """
    raw = bytes_to_bits(payload)
    n_symbols = num_payload_symbols(len(payload), mcs, coded)
    n_cbps = mcs.coded_bits_per_symbol
    if not coded:
        padded = np.zeros(n_symbols * n_cbps, dtype=np.uint8)
        padded[: raw.size] = raw
        return padded.reshape(n_symbols, n_cbps)

    n_dbps = mcs.data_bits_per_symbol
    data = np.concatenate([np.zeros(SERVICE_BITS, dtype=np.uint8), raw])
    padded = np.zeros(n_symbols * n_dbps, dtype=np.uint8)
    padded[: data.size] = data
    scrambled = scramble(padded, scrambler_seed)
    # Tail bits are zeroed *after* scrambling so the decoder trellis terminates.
    tail_start = data.size
    scrambled[tail_start : tail_start + TAIL_BITS] = 0
    coded_bits = conv_encode(scrambled, mcs.code_rate)
    matrix = coded_bits.reshape(n_symbols, n_cbps)
    return interleave_block(matrix, mcs.modulation.bits_per_symbol)


def decode_payload_bits(bit_matrix: np.ndarray, payload_len: int, mcs: Mcs,
                        coded: bool = True, scrambler_seed: int = 0b1011101) -> bytes:
    """Invert :func:`encode_payload_bits` back to payload bytes.

    ``bit_matrix`` is the received per-symbol hard bits; decoding errors are
    *not* detected here (that is the MAC FCS's job) — this just runs the
    inverse pipeline.
    """
    bit_matrix = np.asarray(bit_matrix, dtype=np.uint8)
    if not coded:
        flat = bit_matrix.reshape(-1)[: 8 * payload_len]
        return bits_to_bytes(flat)

    n_symbols = bit_matrix.shape[0]
    n_dbps = mcs.data_bits_per_symbol
    deint = deinterleave_block(bit_matrix, mcs.modulation.bits_per_symbol)
    decoded = viterbi_decode(
        deint.reshape(-1), n_symbols * n_dbps, mcs.code_rate, terminated=False
    )
    descrambled = descramble(decoded, scrambler_seed)
    payload_bits = descrambled[SERVICE_BITS : SERVICE_BITS + 8 * payload_len]
    return bits_to_bytes(payload_bits)


def bits_to_symbols(bit_matrix: np.ndarray, mcs: Mcs, first_pilot_index: int,
                    phases: np.ndarray | None = None) -> np.ndarray:
    """Map a bit matrix onto (n_symbols, 52) used-subcarrier vectors.

    Args:
        first_pilot_index: Pilot-polarity index of the first symbol (SIG is
            index 0, so the first payload symbol of a plain frame is 1).
        phases: Optional per-symbol injected phase rotations (radians) —
            Carpool's side channel. The *entire* symbol (data + pilots) is
            rotated, preserving the pilot/data phase relationship.
    """
    bit_matrix = np.asarray(bit_matrix, dtype=np.uint8)
    n_symbols = bit_matrix.shape[0]
    if phases is None:
        phases = np.zeros(n_symbols)
    phases = np.asarray(phases, dtype=np.float64)
    if phases.size != n_symbols:
        raise ValueError("one phase per symbol required")
    data_points = mcs.modulation.modulate(bit_matrix.reshape(-1))
    out = np.zeros((n_symbols, 52), dtype=np.complex128)
    out[:, DATA_POSITIONS] = data_points.reshape(n_symbols, -1)
    out[:, PILOT_POSITIONS] = pilot_reference_matrix(first_pilot_index, n_symbols)
    out *= np.exp(1j * phases)[:, None]
    return out


def symbols_to_bits(equalized_symbols: np.ndarray, mcs: Mcs) -> np.ndarray:
    """Hard-demodulate (n_symbols, 52) equalized symbols to a bit matrix."""
    equalized_symbols = np.asarray(equalized_symbols, dtype=np.complex128)
    n_symbols = equalized_symbols.shape[0]
    data_points = equalized_symbols[:, DATA_POSITIONS]
    bits = mcs.modulation.demodulate(data_points.reshape(-1))
    return bits.reshape(n_symbols, -1)
