"""CRC generators used across the frame formats.

* CRC-32 — the 802.11 frame check sequence appended to MAC payloads.
* CRC-8  — used by tests and the A-HDR integrity variant.
* CRC-2 / CRC-1 — the tiny per-symbol checksums Carpool carries in the
  phase-offset side channel (paper §5.2: a 2-bit CRC per OFDM symbol gives
  the best reliability/granularity trade-off).

All CRCs here operate on 0/1 bit arrays so they compose directly with the
PHY bit pipeline.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.util.bits import bytes_to_bits

__all__ = [
    "crc_bits",
    "crc_contribution_table",
    "crc32_bits",
    "crc8_bits",
    "crc2_bits",
    "crc1_bits",
    "crc32",
]


def crc_bits(bits: np.ndarray, poly: int, width: int, init: int = 0) -> int:
    """Generic MSB-first CRC over a bit array.

    Args:
        bits: 0/1 input bits.
        poly: Generator polynomial without the leading x^width term.
        width: CRC width in bits.
        init: Initial register value.
    """
    register = init & ((1 << width) - 1)
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for bit in np.asarray(bits, dtype=np.uint8):
        fed = ((register & top) >> (width - 1)) ^ int(bit)
        register = ((register << 1) & mask)
        if fed:
            register ^= poly
    return register


@lru_cache(maxsize=None)
def _contribution_cached(length: int, poly: int, width: int) -> np.ndarray:
    mask = (1 << width) - 1
    top = 1 << (width - 1)
    shifts = np.arange(width - 1, 0 - 1, -1)
    table = np.empty((length, width), dtype=np.uint8)
    # CRC (init=0) of the single bit stream [1]: feeding a 1 into an empty
    # register leaves exactly the polynomial. Moving that 1 one position
    # earlier in the stream appends a trailing zero, i.e. one zero-feed
    # step of the LFSR — so the table fills from the last position back.
    register = poly & mask
    for position in range(length - 1, -1, -1):
        table[position] = (register >> shifts) & 1
        register = ((register << 1) & mask) ^ (poly if register & top else 0)
    table.setflags(write=False)
    return table


def crc_contribution_table(length: int, poly: int, width: int) -> np.ndarray:
    """Per-bit CRC contributions for ``length``-bit inputs (init = 0).

    Row ``j`` is ``crc_bits(e_j, poly, width)`` as a width-bit MSB-first
    array, where ``e_j`` is the unit input with a single 1 at position
    ``j``. With a zero initial register the CRC is GF(2)-linear, so the
    checksum of any input is the XOR of the rows its set bits select —
    which turns a whole batch of CRCs into one integer matmul::

        checksums = (bits_matrix.astype(np.int64) @ table) & 1

    bit-identical to calling :func:`crc_bits` per row. Cached per
    ``(length, poly, width)``; returned read-only.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    return _contribution_cached(int(length), int(poly), int(width))


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def crc32_bits(bits: np.ndarray) -> int:
    """CRC-32 over a byte-aligned bit array — the 802.11/Ethernet FCS.

    Uses the standard *reflected* convention (bits of each byte processed
    LSB first, output bit-reversed), matching ``binascii.crc32``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError("CRC-32 input must be byte-aligned")
    reflected = bits.reshape(-1, 8)[:, ::-1].reshape(-1)
    register = crc_bits(reflected, poly=0x04C11DB7, width=32, init=0xFFFFFFFF)
    return _reflect(register, 32) ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """CRC-32 over bytes — the 802.11 FCS."""
    return crc32_bits(bytes_to_bits(data))


def crc8_bits(bits: np.ndarray) -> int:
    """CRC-8 with polynomial x^8 + x^2 + x + 1 (0x07)."""
    return crc_bits(bits, poly=0x07, width=8)


def crc2_bits(bits: np.ndarray) -> int:
    """CRC-2 with polynomial x^2 + x + 1 (0x3) — Carpool's per-symbol checksum."""
    return crc_bits(bits, poly=0x3, width=2)


def crc1_bits(bits: np.ndarray) -> int:
    """CRC-1: plain parity — the 1-bit side-channel variant."""
    return int(np.asarray(bits, dtype=np.uint8).sum() & 1)
