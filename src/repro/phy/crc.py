"""CRC generators used across the frame formats.

* CRC-32 — the 802.11 frame check sequence appended to MAC payloads.
* CRC-8  — used by tests and the A-HDR integrity variant.
* CRC-2 / CRC-1 — the tiny per-symbol checksums Carpool carries in the
  phase-offset side channel (paper §5.2: a 2-bit CRC per OFDM symbol gives
  the best reliability/granularity trade-off).

All CRCs here operate on 0/1 bit arrays so they compose directly with the
PHY bit pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.util.bits import bytes_to_bits

__all__ = ["crc_bits", "crc32_bits", "crc8_bits", "crc2_bits", "crc1_bits", "crc32"]


def crc_bits(bits: np.ndarray, poly: int, width: int, init: int = 0) -> int:
    """Generic MSB-first CRC over a bit array.

    Args:
        bits: 0/1 input bits.
        poly: Generator polynomial without the leading x^width term.
        width: CRC width in bits.
        init: Initial register value.
    """
    register = init & ((1 << width) - 1)
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for bit in np.asarray(bits, dtype=np.uint8):
        fed = ((register & top) >> (width - 1)) ^ int(bit)
        register = ((register << 1) & mask)
        if fed:
            register ^= poly
    return register


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def crc32_bits(bits: np.ndarray) -> int:
    """CRC-32 over a byte-aligned bit array — the 802.11/Ethernet FCS.

    Uses the standard *reflected* convention (bits of each byte processed
    LSB first, output bit-reversed), matching ``binascii.crc32``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError("CRC-32 input must be byte-aligned")
    reflected = bits.reshape(-1, 8)[:, ::-1].reshape(-1)
    register = crc_bits(reflected, poly=0x04C11DB7, width=32, init=0xFFFFFFFF)
    return _reflect(register, 32) ^ 0xFFFFFFFF


def crc32(data: bytes) -> int:
    """CRC-32 over bytes — the 802.11 FCS."""
    return crc32_bits(bytes_to_bits(data))


def crc8_bits(bits: np.ndarray) -> int:
    """CRC-8 with polynomial x^8 + x^2 + x + 1 (0x07)."""
    return crc_bits(bits, poly=0x07, width=8)


def crc2_bits(bits: np.ndarray) -> int:
    """CRC-2 with polynomial x^2 + x + 1 (0x3) — Carpool's per-symbol checksum."""
    return crc_bits(bits, poly=0x3, width=2)


def crc1_bits(bits: np.ndarray) -> int:
    """CRC-1: plain parity — the 1-bit side-channel variant."""
    return int(np.asarray(bits, dtype=np.uint8).sum() & 1)
