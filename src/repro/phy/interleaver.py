"""The 802.11a two-permutation block interleaver.

Operates on one OFDM symbol's worth of coded bits (N_CBPS). The first
permutation spreads adjacent coded bits across non-adjacent subcarriers;
the second alternates them between more and less significant constellation
bits. Both are pure index permutations, so deinterleaving is the inverse
permutation.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "interleave",
    "deinterleave",
    "interleave_block",
    "deinterleave_block",
    "interleave_permutation",
]

_COLUMNS = 16


@lru_cache(maxsize=None)
def interleave_permutation(n_cbps: int, n_bpsc: int) -> tuple:
    """The composed permutation for one symbol.

    Returns a tuple ``perm`` where transmitted position ``j = perm[k]`` for
    input position ``k`` (802.11a-2012 §18.3.5.7).
    """
    if n_cbps % _COLUMNS != 0:
        raise ValueError(f"N_CBPS={n_cbps} must be a multiple of {_COLUMNS}")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation.
    i = (n_cbps // _COLUMNS) * (k % _COLUMNS) + k // _COLUMNS
    # Second permutation.
    j = s * (i // s) + (i + n_cbps - (_COLUMNS * i // n_cbps)) % s
    return tuple(int(x) for x in j)


@lru_cache(maxsize=None)
def _permutation_array(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """The permutation as a cached, read-only index array."""
    perm = np.array(interleave_permutation(n_cbps, n_bpsc))
    perm.setflags(write=False)
    return perm


def interleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Interleave one OFDM symbol's coded bits (length = N_CBPS)."""
    bits = np.asarray(bits, dtype=np.uint8)
    perm = _permutation_array(bits.size, n_bpsc)
    out = np.empty_like(bits)
    out[perm] = bits
    return out


def deinterleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Inverse of :func:`interleave`."""
    bits = np.asarray(bits, dtype=np.uint8)
    perm = _permutation_array(bits.size, n_bpsc)
    return bits[perm]


def interleave_block(bit_matrix: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Interleave every row of an (n_symbols, N_CBPS) bit matrix at once."""
    bit_matrix = np.asarray(bit_matrix, dtype=np.uint8)
    perm = _permutation_array(bit_matrix.shape[1], n_bpsc)
    out = np.empty_like(bit_matrix)
    out[:, perm] = bit_matrix
    return out


def deinterleave_block(bit_matrix: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Inverse of :func:`interleave_block`."""
    bit_matrix = np.asarray(bit_matrix, dtype=np.uint8)
    perm = _permutation_array(bit_matrix.shape[1], n_bpsc)
    return bit_matrix[:, perm]
