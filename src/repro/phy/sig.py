"""The SIGNAL (SIG) field: rate and length header of every (sub)frame.

SIG is one OFDM symbol at BPSK rate 1/2 carrying 24 bits:
RATE(4) | Reserved(1) | LENGTH(12) | Parity(1) | Tail(6).

Two properties matter for Carpool (§4.1): SIG is *not* scrambled, and it is
always sent at the basic rate — so any receiver can decode the SIG of any
subframe to learn that subframe's length and skip over it without decoding
its payload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.coding import RATE_1_2, conv_encode, viterbi_decode
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.mcs import Mcs, mcs_by_rate_bits
from repro.phy.modulation import BPSK
from repro.util.bits import bits_to_int, int_to_bits

__all__ = ["SigField", "SigDecodeError", "encode_sig", "decode_sig", "SIG_CODED_BITS"]

SIG_DATA_BITS = 24
SIG_CODED_BITS = 48
MAX_SIG_LENGTH = (1 << 12) - 1


class SigDecodeError(ValueError):
    """Raised when a received SIG fails its parity or RATE validity check."""


@dataclass(frozen=True)
class SigField:
    """Decoded contents of a SIG symbol."""

    mcs: Mcs
    length_bytes: int

    def __post_init__(self):
        if not 0 < self.length_bytes <= MAX_SIG_LENGTH:
            raise ValueError(f"LENGTH must be 1..{MAX_SIG_LENGTH}, got {self.length_bytes}")


def _sig_bits(sig: SigField) -> np.ndarray:
    rate = int_to_bits(sig.mcs.rate_bits, 4)
    reserved = np.zeros(1, dtype=np.uint8)
    # LENGTH is transmitted LSB first per the standard.
    length_msb = int_to_bits(sig.length_bytes, 12)
    length = length_msb[::-1]
    body = np.concatenate([rate, reserved, length])
    parity = np.array([int(body.sum()) & 1], dtype=np.uint8)
    tail = np.zeros(6, dtype=np.uint8)
    return np.concatenate([body, parity, tail])


def encode_sig(sig: SigField) -> np.ndarray:
    """Encode a SIG field into 48 BPSK constellation points (one symbol)."""
    coded = conv_encode(_sig_bits(sig), RATE_1_2)
    interleaved = interleave(coded, BPSK.bits_per_symbol)
    return BPSK.modulate(interleaved)


def decode_sig(points: np.ndarray) -> SigField:
    """Decode 48 received BPSK points back into a SIG field.

    Raises :class:`SigDecodeError` on parity failure, invalid RATE bits, or
    zero LENGTH — the same conditions that make a hardware receiver abort
    reception.
    """
    hard = BPSK.demodulate(points)
    coded = deinterleave(hard, BPSK.bits_per_symbol)
    bits = viterbi_decode(coded, SIG_DATA_BITS, RATE_1_2, terminated=True)
    body = bits[:17]
    parity = int(bits[17])
    if int(body.sum()) & 1 != parity:
        raise SigDecodeError("SIG parity check failed")
    rate_bits = bits_to_int(bits[:4])
    try:
        mcs = mcs_by_rate_bits(rate_bits)
    except KeyError as exc:
        raise SigDecodeError(str(exc)) from exc
    length = bits_to_int(bits[5:17][::-1])
    if length == 0:
        raise SigDecodeError("SIG LENGTH is zero")
    return SigField(mcs=mcs, length_bytes=length)
