"""The public API surface: everything __all__ promises actually exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.phy",
    "repro.channel",
    "repro.bloom",
    "repro.mac",
    "repro.mac.protocols",
    "repro.traffic",
    "repro.analysis",
    "repro.util",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_import_order_traffic_first():
    """Regression: importing repro.traffic before repro.mac used to hit a
    circular import through mac.scenarios."""
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-c", "import repro.traffic; import repro.mac"],
        capture_output=True,
    )
    assert result.returncode == 0, result.stderr.decode()


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
