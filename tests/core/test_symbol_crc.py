import numpy as np
import pytest

from repro.core.side_channel import ONE_BIT_SCHEME, TWO_BIT_SCHEME
from repro.core.symbol_crc import (
    DEFAULT_CRC_CONFIG,
    SymbolCrcConfig,
    crc_checksum_bits,
)


class TestChecksumBits:
    def test_width(self):
        bits = np.ones(20, dtype=np.uint8)
        for width in (1, 2, 3, 4, 8):
            assert crc_checksum_bits(bits, width).size == width

    def test_parity_width_one(self):
        assert crc_checksum_bits(np.array([1, 1, 1], dtype=np.uint8), 1).tolist() == [1]

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            crc_checksum_bits(np.ones(4, dtype=np.uint8), 12)

    def test_sensitive_to_input(self):
        a = np.zeros(48, dtype=np.uint8)
        b = a.copy()
        b[13] = 1
        assert not np.array_equal(crc_checksum_bits(a, 2), crc_checksum_bits(b, 2))


class TestConfig:
    def test_default_is_paper_choice(self):
        """§5.2: one symbol per group, 2-bit scheme (CRC-2 per symbol)."""
        assert DEFAULT_CRC_CONFIG.scheme is TWO_BIT_SCHEME
        assert DEFAULT_CRC_CONFIG.granularity == 1
        assert DEFAULT_CRC_CONFIG.crc_width == 2

    def test_six_paper_schemes_constructible(self):
        """The paper measured 2 schemes × 3 granularities (§5.2)."""
        for scheme in (ONE_BIT_SCHEME, TWO_BIT_SCHEME):
            for granularity in (1, 2, 3):
                cfg = SymbolCrcConfig(scheme=scheme, granularity=granularity)
                assert cfg.crc_width == granularity * scheme.bits_per_symbol

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            SymbolCrcConfig(granularity=0)

    def test_num_groups(self):
        cfg = SymbolCrcConfig(granularity=3)
        assert cfg.num_groups(9) == 3
        assert cfg.num_groups(10) == 4

    def test_group_of(self):
        cfg = SymbolCrcConfig(granularity=2)
        assert [cfg.group_of(i) for i in range(5)] == [0, 0, 1, 1, 2]


class TestSideBits:
    def _matrix(self, n_symbols, n_bits=96, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 2, (n_symbols, n_bits), dtype=np.uint8)

    def test_shape(self):
        cfg = DEFAULT_CRC_CONFIG
        matrix = self._matrix(7)
        side = cfg.side_bits_for(matrix)
        assert side.shape == (7, 2)

    def test_per_symbol_crc_checks_pass(self):
        cfg = DEFAULT_CRC_CONFIG
        matrix = self._matrix(5)
        side = cfg.side_bits_for(matrix)
        for g in range(5):
            assert cfg.check_group(g, matrix, side)

    def test_corrupted_symbol_fails_its_group_only(self):
        cfg = DEFAULT_CRC_CONFIG
        matrix = self._matrix(5)
        side = cfg.side_bits_for(matrix)
        corrupted = matrix.copy()
        corrupted[2, 10] ^= 1
        assert not cfg.check_group(2, corrupted, side)
        for g in (0, 1, 3, 4):
            assert cfg.check_group(g, corrupted, side)

    def test_multi_symbol_groups(self):
        cfg = SymbolCrcConfig(scheme=ONE_BIT_SCHEME, granularity=3)  # CRC-3 / 3 symbols
        matrix = self._matrix(6)
        side = cfg.side_bits_for(matrix)
        assert side.shape == (6, 1)
        assert cfg.check_group(0, matrix, side)
        assert cfg.check_group(1, matrix, side)
        corrupted = matrix.copy()
        corrupted[4, 0] ^= 1
        assert cfg.check_group(0, corrupted, side)
        assert not cfg.check_group(1, corrupted, side)

    def test_partial_trailing_group_not_verifiable(self):
        cfg = SymbolCrcConfig(scheme=TWO_BIT_SCHEME, granularity=2)
        matrix = self._matrix(5)  # groups: [0,1], [2,3], [4 partial]
        side = cfg.side_bits_for(matrix)
        assert cfg.verifiable(0, 5)
        assert cfg.verifiable(1, 5)
        assert not cfg.verifiable(2, 5)
        assert not cfg.check_group(2, matrix, side)
