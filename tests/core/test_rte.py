import numpy as np
import pytest

from repro.core.rte import UPDATE_RULES, RealTimeEstimator
from repro.phy.constants import pilot_values
from repro.phy.modulation import QAM16
from repro.phy.ofdm import assemble_symbol


def _known_symbol(rng, symbol_index=1):
    bits = rng.integers(0, 2, 48 * 4, dtype=np.uint8)
    data = QAM16.modulate(bits)
    return assemble_symbol(data, pilot_values(symbol_index))


class TestEstimator:
    def test_initial_estimate_preserved(self):
        h0 = np.ones(52, dtype=complex)
        est = RealTimeEstimator(h0)
        np.testing.assert_array_equal(est.estimate, h0)

    def test_update_moves_halfway(self):
        """Eq. (3): H̃ₙ = (H̃ₙ₋₁ + Ĥₙ)/2."""
        rng = np.random.default_rng(0)
        h0 = np.ones(52, dtype=complex)
        h_true = np.full(52, 2.0 + 0j)
        known = _known_symbol(rng)
        est = RealTimeEstimator(h0, outlier_threshold=None)
        est.update(h_true * known, known)
        np.testing.assert_allclose(est.estimate, np.full(52, 1.5 + 0j))
        assert est.updates == 1

    def test_outlier_guard_blocks_wild_jumps(self):
        """A data-pilot estimate that jumps 100 % is a CRC false positive
        and must be rejected; small moves pass."""
        rng = np.random.default_rng(10)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        est = RealTimeEstimator(h0)  # default guard at 50 %
        est.update(2.0 * known, known)  # 100 % jump → rejected
        np.testing.assert_allclose(est.estimate, h0)
        est.update(1.2 * known, known)  # 20 % move → accepted
        np.testing.assert_allclose(est.estimate, np.full(52, 1.1 + 0j))

    def test_skip_keeps_estimate(self):
        h0 = np.ones(52, dtype=complex)
        est = RealTimeEstimator(h0)
        est.skip()
        np.testing.assert_array_equal(est.estimate, h0)
        assert est.skips == 1

    def test_converges_to_true_channel(self):
        rng = np.random.default_rng(1)
        h_true = rng.normal(size=52) + 1j * rng.normal(size=52)
        est = RealTimeEstimator(np.ones(52, dtype=complex), outlier_threshold=None)
        for i in range(12):
            known = _known_symbol(rng, i)
            est.update(h_true * known, known)
        np.testing.assert_allclose(est.estimate, h_true, atol=1e-3)

    def test_tracks_drifting_channel(self):
        """The running estimate must follow a slowly rotating channel far
        better than the frozen preamble estimate."""
        rng = np.random.default_rng(2)
        h0 = np.ones(52, dtype=complex)
        est = RealTimeEstimator(h0)
        h = h0.copy()
        for i in range(60):
            h = h * np.exp(1j * 0.01)  # 0.57°/symbol drift
            known = _known_symbol(rng, i)
            est.update(h * known, known)
        frozen_error = np.abs(h - h0).mean()
        rte_error = np.abs(h - est.estimate).mean()
        assert rte_error < 0.1 * frozen_error

    def test_replace_rule_exact(self):
        rng = np.random.default_rng(3)
        h_true = np.full(52, 3.0 + 0j)
        known = _known_symbol(rng)
        est = RealTimeEstimator(np.ones(52, dtype=complex), update_rule="replace",
                                outlier_threshold=None)
        est.update(h_true * known, known)
        np.testing.assert_allclose(est.estimate, h_true)

    def test_custom_callable_rule(self):
        est = RealTimeEstimator(np.ones(52, dtype=complex), update_rule=lambda p, l: p)
        rng = np.random.default_rng(4)
        known = _known_symbol(rng)
        est.update(2.0 * known, known)
        np.testing.assert_allclose(est.estimate, np.ones(52))

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            RealTimeEstimator(np.ones(52, dtype=complex), update_rule="bogus")

    def test_rules_registry(self):
        assert set(UPDATE_RULES) == {"average", "replace", "ewma"}

    def test_averaging_more_noise_robust_than_replace(self):
        """Averaging suppresses estimation noise on a static channel."""
        rng = np.random.default_rng(5)
        h_true = np.ones(52, dtype=complex)
        errors = {}
        for rule in ("average", "replace"):
            noise_rng = np.random.default_rng(99)
            est = RealTimeEstimator(h_true.copy(), update_rule=rule)
            for i in range(40):
                known = _known_symbol(rng, i)
                noise = 0.2 * (noise_rng.normal(size=52) + 1j * noise_rng.normal(size=52))
                est.update(h_true * known + noise, known)
            errors[rule] = np.abs(est.estimate - h_true).mean()
        assert errors["average"] < errors["replace"]
