import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.core import (
    CarpoolReceiver,
    CarpoolTransmitter,
    MacAddress,
    SubframeSpec,
)
from repro.core.frame import AHDR_SYMBOL_OFFSET
from repro.phy import mcs_by_name
from repro.util.rng import RngStream


def _specs(sizes, mcs_name="QAM16-1/2", seed=0):
    rng = np.random.default_rng(seed)
    mcs = mcs_by_name(mcs_name)
    return [
        SubframeSpec(
            MacAddress.from_int(i),
            bytes(rng.integers(0, 256, size, dtype=np.uint8)),
            mcs,
        )
        for i, size in enumerate(sizes)
    ]


class TestFrameBuild:
    def test_layout(self):
        specs = _specs([100, 200])
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        # preamble(4) + A-HDR(2) + per-subframe (1 SIG + payload).
        expected = 4 + 2 + sum(1 + sf.n_payload_symbols for sf in frame.subframes)
        assert frame.n_symbols == expected
        assert frame.subframes[0].sig_symbol_index == AHDR_SYMBOL_OFFSET + 2
        assert frame.subframes[1].sig_symbol_index == frame.subframes[0].end_symbol

    def test_mixed_mcs_per_subframe(self):
        rng = np.random.default_rng(1)
        specs = [
            SubframeSpec(MacAddress.from_int(0), bytes(rng.bytes(100)), mcs_by_name("BPSK-1/2")),
            SubframeSpec(MacAddress.from_int(1), bytes(rng.bytes(100)), mcs_by_name("QAM64-3/4")),
        ]
        frame = CarpoolTransmitter().build_frame(specs)
        assert frame.subframes[0].n_payload_symbols > frame.subframes[1].n_payload_symbols

    def test_duplicate_receiver_rejected(self):
        specs = _specs([100])
        with pytest.raises(ValueError):
            CarpoolTransmitter().build_frame([specs[0], specs[0]])

    def test_nine_receivers_rejected(self):
        with pytest.raises(ValueError):
            CarpoolTransmitter().build_frame(_specs([50] * 9))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CarpoolTransmitter().build_frame([])

    def test_subframe_lookup(self):
        specs = _specs([60, 70, 80])
        frame = CarpoolTransmitter().build_frame(specs)
        assert frame.subframe_for(MacAddress.from_int(1)).position == 1
        assert frame.subframe_for(MacAddress.from_int(42)) is None

    def test_side_channel_phases_cumulative(self):
        specs = _specs([300])
        frame = CarpoolTransmitter(coded=False).build_frame(specs)
        phases = frame.subframes[0].injected_phases
        deltas = np.angle(np.exp(1j * np.diff(np.concatenate([[0.0], phases]))))
        # 2-bit scheme: every delta is one of ±45°, ±135°.
        allowed = np.deg2rad([45, 135, -45, -135])
        for d in deltas:
            assert np.min(np.abs(np.angle(np.exp(1j * (d - allowed))))) < 1e-9

    def test_no_side_channel_option(self):
        frame = CarpoolTransmitter(inject_side_channel=False).build_frame(_specs([100]))
        assert not frame.subframes[0].injected_phases.any()


class TestLoopback:
    """Noise-free decode: every receiver gets exactly its payload."""

    @pytest.mark.parametrize("coded", [True, False])
    def test_all_receivers_decode(self, coded):
        specs = _specs([120, 260, 90], seed=2)
        frame = CarpoolTransmitter(coded=coded).build_frame(specs)
        for i, spec in enumerate(specs):
            result = CarpoolReceiver(spec.receiver, coded=coded).receive(frame.symbols)
            assert result.matched_positions == [i]
            assert result.num_subframes_seen == 3
            assert result.subframes[0].payload == spec.payload
            assert result.subframes[0].crc_pass.all()

    def test_stranger_decodes_nothing(self):
        frame = CarpoolTransmitter().build_frame(_specs([100, 100]))
        result = CarpoolReceiver(MacAddress.from_int(77)).receive(frame.symbols)
        assert result.subframes == []
        assert result.num_subframes_seen == 2

    def test_decode_all_instrumentation(self):
        specs = _specs([100, 100])
        frame = CarpoolTransmitter().build_frame(specs)
        result = CarpoolReceiver(specs[0].receiver, decode_all=True).receive(frame.symbols)
        assert [sf.position for sf in result.subframes] == [0, 1]


class TestOverChannel:
    def test_moderate_snr_all_decode(self):
        specs = _specs([200, 200, 200], seed=3)
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        channel = ChannelModel(
            snr_db=28,
            rng=RngStream(11),
            profile=FadingProfile(coherence_time=50e-3),
        )
        received = channel.transmit(frame.symbols)
        for i, spec in enumerate(specs):
            result = CarpoolReceiver(spec.receiver, coded=True).receive(received)
            assert result.matched_positions == [i]
            assert result.subframes[0].payload == spec.payload

    def test_rte_updates_happen_over_channel(self):
        specs = _specs([400], seed=4)
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        channel = ChannelModel(snr_db=30, rng=RngStream(12))
        result = CarpoolReceiver(specs[0].receiver).receive(channel.transmit(frame.symbols))
        assert result.subframes[0].rte_updates > 0
