import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.side_channel import (
    ONE_BIT_SCHEME,
    SCHEMES,
    TWO_BIT_SCHEME,
    wrap_phase,
)


class TestWrapPhase:
    def test_identity_in_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)

    def test_wraps_above_pi(self):
        assert wrap_phase(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_pi_maps_to_pi(self):
        assert wrap_phase(np.pi) == pytest.approx(np.pi)
        assert wrap_phase(-np.pi) == pytest.approx(np.pi)


class TestSchemes:
    def test_registry(self):
        assert set(SCHEMES) == {"1-bit", "2-bit"}

    def test_one_bit_mapping_matches_table1(self):
        # Table 1: 90° → 1, −90° → 0.
        deltas = ONE_BIT_SCHEME.encode_deltas(np.array([1, 0], dtype=np.uint8))
        np.testing.assert_allclose(np.rad2deg(deltas), [90.0, -90.0])

    def test_two_bit_mapping_matches_table1(self):
        # Table 1: 45° → 11, 135° → 01, −135° → 00, −45° → 10.
        bits = np.array([1, 1, 0, 1, 0, 0, 1, 0], dtype=np.uint8)
        deltas = TWO_BIT_SCHEME.encode_deltas(bits)
        np.testing.assert_allclose(np.rad2deg(deltas), [45.0, 135.0, -135.0, -45.0])

    def test_figure8_example(self):
        """Fig. 8(b): bits "110" (1-bit scheme) → injected 90°, 180°, 90°."""
        phases = ONE_BIT_SCHEME.encode_phases(np.array([1, 1, 0], dtype=np.uint8))
        np.testing.assert_allclose(np.rad2deg(phases), [90.0, 180.0, 90.0])

    def test_wrong_bit_count_raises(self):
        with pytest.raises(ValueError):
            TWO_BIT_SCHEME.encode_deltas(np.array([1], dtype=np.uint8))


@pytest.mark.parametrize("scheme", [ONE_BIT_SCHEME, TWO_BIT_SCHEME], ids=lambda s: s.name)
class TestRoundTrip:
    def test_noiseless(self, scheme):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 50 * scheme.bits_per_symbol, dtype=np.uint8)
        phases = scheme.encode_phases(bits)
        np.testing.assert_array_equal(scheme.decode_phases(phases), bits)

    def test_survives_cfo_drift(self, scheme):
        """A slow inherent phase ramp (residual CFO) must not corrupt the
        differential decoding even when absolute phases exceed ±180°."""
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 100 * scheme.bits_per_symbol, dtype=np.uint8)
        injected = scheme.encode_phases(bits)
        n = injected.size
        drift = 0.05 * np.arange(1, n + 1)  # ≈2.9°/symbol, unbounded total
        measured = np.angle(np.exp(1j * (injected + drift)))
        decoded = scheme.decode_phases(measured, reference_phase=0.0)
        np.testing.assert_array_equal(decoded, bits)

    def test_survives_phase_noise(self, scheme):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 80 * scheme.bits_per_symbol, dtype=np.uint8)
        injected = scheme.encode_phases(bits)
        # Noise well inside half the decision distance (45°/2 for 2-bit).
        noise = rng.normal(0.0, np.deg2rad(5.0), injected.size)
        decoded = scheme.decode_phases(np.angle(np.exp(1j * (injected + noise))))
        np.testing.assert_array_equal(decoded, bits)

    def test_reference_phase_respected(self, scheme):
        bits = np.zeros(scheme.bits_per_symbol, dtype=np.uint8)
        phases = scheme.encode_phases(bits) + 0.7
        decoded = scheme.decode_phases(phases, reference_phase=0.7)
        np.testing.assert_array_equal(decoded, bits)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_property_round_trip(self, scheme, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 16 * scheme.bits_per_symbol, dtype=np.uint8)
        np.testing.assert_array_equal(
            scheme.decode_phases(scheme.encode_phases(bits)), bits
        )
