"""RteGuard: whole-symbol outlier rejection and bounded-state recovery."""

import numpy as np
import pytest

from repro.core.rte import HARDENED_GUARD, RealTimeEstimator, RteGuard
from repro.phy.constants import pilot_values
from repro.phy.modulation import QAM16
from repro.phy.ofdm import assemble_symbol


def _known_symbol(rng, symbol_index=1):
    bits = rng.integers(0, 2, 48 * 4, dtype=np.uint8)
    data = QAM16.modulate(bits)
    return assemble_symbol(data, pilot_values(symbol_index))


def _hardened(h0, recover_after=3):
    guard = RteGuard(outlier_threshold=0.5, symbol_reject_fraction=0.25,
                     recover_after=recover_after)
    return RealTimeEstimator(h0, guard=guard)


class TestGuardEquivalence:
    def test_default_guard_matches_legacy_parameter(self):
        """guard=None + outlier_threshold must behave exactly like the
        pre-guard estimator (per-subcarrier masking only)."""
        rng = np.random.default_rng(0)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        received = (1.0 + 0.3 * rng.standard_normal(52)) * known
        legacy = RealTimeEstimator(h0.copy(), outlier_threshold=0.5)
        via_guard = RealTimeEstimator(h0.copy(),
                                      guard=RteGuard(outlier_threshold=0.5))
        legacy.update(received, known)
        via_guard.update(received, known)
        np.testing.assert_array_equal(legacy.estimate, via_guard.estimate)

    def test_hardened_constant_exists(self):
        assert HARDENED_GUARD.symbol_reject_fraction == 0.25
        assert HARDENED_GUARD.recover_after == 3


class TestWholeSymbolRejection:
    def test_poisoned_symbol_rejected_outright(self):
        """When most subcarriers jump at once (a CRC false pass on a
        burst-corrupted symbol), the whole update is discarded."""
        rng = np.random.default_rng(1)
        h0 = np.ones(52, dtype=complex)
        est = _hardened(h0)
        est.update(3.0 * _known_symbol(rng), _known_symbol(rng))
        np.testing.assert_array_equal(est.estimate, h0)
        assert est.rejected_symbols == 1
        assert est.updates == 0

    def test_clean_symbol_still_updates(self):
        rng = np.random.default_rng(2)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        est = _hardened(h0)
        est.update(1.2 * known, known)
        np.testing.assert_allclose(est.estimate, np.full(52, 1.1 + 0j))
        assert est.rejected_symbols == 0

    def test_few_bad_subcarriers_masked_not_rejected(self):
        """Isolated outliers fall below the symbol-reject fraction and are
        handled per-subcarrier, as before."""
        rng = np.random.default_rng(3)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        received = known.astype(complex).copy()
        received[:5] *= 10.0  # 5/52 < 25 % of subcarriers jump
        est = _hardened(h0)
        est.update(received, known)
        assert est.rejected_symbols == 0
        assert est.updates == 1
        np.testing.assert_allclose(est.estimate[:5], h0[:5])  # masked
        np.testing.assert_allclose(est.estimate[5:], h0[5:])  # (1+1)/2


class TestBoundedRecovery:
    def test_persistent_rejection_snaps_to_latest(self):
        """If the channel genuinely moved, endless rejection would pin the
        estimator to a stale state; after ``recover_after`` consecutive
        rejects the next estimate is accepted wholesale."""
        rng = np.random.default_rng(4)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        est = _hardened(h0, recover_after=3)
        for _ in range(3):
            est.update(3.0 * known, known)
        assert est.rejected_symbols == 3
        np.testing.assert_array_equal(est.estimate, h0)
        est.update(3.0 * known, known)  # 4th: bounded state → snap
        np.testing.assert_allclose(est.estimate, np.full(52, 3.0 + 0j))
        assert est.updates == 1

    def test_clean_update_resets_the_reject_counter(self):
        rng = np.random.default_rng(5)
        h0 = np.ones(52, dtype=complex)
        known = _known_symbol(rng)
        est = _hardened(h0, recover_after=2)
        est.update(3.0 * known, known)
        est.update(known, known)  # clean → counter reset
        est.update(3.0 * known, known)
        est.update(3.0 * known, known)
        # Only the 3rd consecutive-reject sequence may snap; with the reset,
        # rejections total 3 and no snap happened yet at this point.
        assert est.rejected_symbols == 3

    def test_guard_validation(self):
        with pytest.raises(ValueError):
            RteGuard(symbol_reject_fraction=1.5)
        with pytest.raises(ValueError):
            RteGuard(recover_after=0)
