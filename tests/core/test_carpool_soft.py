"""Soft-decision payload decoding inside the Carpool receiver."""

import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.core import CarpoolReceiver, CarpoolTransmitter, MacAddress, SubframeSpec
from repro.phy import mcs_by_name
from repro.util.rng import RngStream


def _frame(sizes=(250, 250), mcs="QAM16-3/4", seed=0):
    rng = np.random.default_rng(seed)
    specs = [
        SubframeSpec(MacAddress.from_int(i),
                     bytes(rng.integers(0, 256, s, dtype=np.uint8)),
                     mcs_by_name(mcs))
        for i, s in enumerate(sizes)
    ]
    return CarpoolTransmitter(coded=True).build_frame(specs), specs


class TestCarpoolSoft:
    def test_loopback(self):
        frame, specs = _frame()
        for spec in specs:
            result = CarpoolReceiver(spec.receiver, soft=True).receive(frame.symbols)
            assert result.subframes[0].payload == spec.payload

    def test_soft_flag_ignored_when_uncoded(self):
        rx = CarpoolReceiver(MacAddress.from_int(0), coded=False, soft=True)
        assert not rx.soft

    @pytest.mark.slow
    def test_soft_beats_hard_over_rough_channel(self):
        frame, specs = _frame(mcs="QAM16-3/4", seed=1)
        profile = FadingProfile(num_taps=4, delay_spread_taps=1.5,
                                ricean_k_db=5.0, coherence_time=np.inf)
        hard_fails = 0
        soft_fails = 0
        trials = 30
        for t in range(trials):
            channel = ChannelModel(snr_db=18.0, rng=RngStream(200 + t),
                                   profile=profile)
            received = channel.transmit(frame.symbols)
            for spec in specs:
                hard = CarpoolReceiver(spec.receiver, soft=False).receive(received)
                soft = CarpoolReceiver(spec.receiver, soft=True).receive(received)
                hard_fails += (not hard.subframes
                               or hard.subframes[0].payload != spec.payload)
                soft_fails += (not soft.subframes
                               or soft.subframes[0].payload != spec.payload)
        assert soft_fails < hard_fails
