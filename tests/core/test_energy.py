import pytest

from repro.core.energy import (
    WPC55AG,
    DevicePowerModel,
    EnergyBreakdown,
    carpool_energy_overhead,
)


class TestPowerModel:
    def test_paper_values(self):
        """§8: TX 1.71 W, RX 1.66 W, idle 1.22 W (WPC55AG model)."""
        assert WPC55AG.tx_watts == 1.71
        assert WPC55AG.rx_watts == 1.66
        assert WPC55AG.idle_watts == 1.22

    def test_energy_accounting(self):
        e = DevicePowerModel(1.0, 2.0, 3.0).energy(1.0, 1.0, 1.0)
        assert e == pytest.approx(6.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WPC55AG.energy(-1.0, 0.0, 0.0)


class TestBreakdown:
    def test_default_sums_to_one(self):
        EnergyBreakdown()  # must not raise

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(idle_fraction=0.5, rx_fraction=0.1, tx_fraction=0.1)


class TestOverheadEstimate:
    def test_paper_numbers(self):
        """§8: ≤5.59 % extra RX power; ≈0.28 % total for ≥92 % of clients."""
        result = carpool_energy_overhead(num_receivers=8)
        assert result["false_positive_ratio"] == pytest.approx(0.0559, abs=0.002)
        assert result["total_energy_overhead"] == pytest.approx(0.0028, abs=0.0002)

    def test_fewer_receivers_less_overhead(self):
        a = carpool_energy_overhead(num_receivers=4)["total_energy_overhead"]
        b = carpool_energy_overhead(num_receivers=8)["total_energy_overhead"]
        assert a < b
