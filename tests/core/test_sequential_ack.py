import pytest

from repro.core.sequential_ack import AckTiming, SequentialAckPlan

TIMING = AckTiming(ack_duration=44e-6, sifs=10e-6)


class TestAckTiming:
    def test_slot(self):
        assert TIMING.slot == pytest.approx(54e-6)


class TestPlan:
    def test_nav_data_eq1(self):
        """Eq. (1): NAV_data = t_payload + N·(t_ACK + t_SIFS)."""
        plan = SequentialAckPlan(3, TIMING)
        assert plan.nav_data(500e-6) == pytest.approx(500e-6 + 3 * 54e-6)

    def test_receiver_nav_eq2(self):
        """Eq. (2): NAV_i = (i−1)·(t_ACK + t_SIFS) with 1-based i."""
        plan = SequentialAckPlan(4, TIMING)
        assert plan.receiver_nav(0) == 0.0
        assert plan.receiver_nav(2) == pytest.approx(2 * 54e-6)

    def test_last_ack_nav_zero_like_legacy(self):
        plan = SequentialAckPlan(5, TIMING)
        assert plan.ack_nav(4) == 0.0
        assert plan.ack_nav(0) == pytest.approx(4 * 54e-6)

    def test_acks_do_not_overlap(self):
        plan = SequentialAckPlan(8, TIMING)
        for i in range(7):
            assert plan.ack_end_time(i) < plan.ack_start_time(i + 1)

    def test_acks_spaced_by_sifs(self):
        plan = SequentialAckPlan(4, TIMING)
        for i in range(3):
            gap = plan.ack_start_time(i + 1) - plan.ack_end_time(i)
            assert gap == pytest.approx(TIMING.sifs)

    def test_sequence_duration_matches_nav(self):
        plan = SequentialAckPlan(6, TIMING)
        assert plan.sequence_duration() == pytest.approx(6 * TIMING.slot)
        assert plan.nav_data(0.0) == pytest.approx(plan.sequence_duration())

    def test_match_ack_by_timestamp(self):
        plan = SequentialAckPlan(4, TIMING)
        for i in range(4):
            arrival = plan.ack_start_time(i) + 0.5e-6  # small propagation delay
            assert plan.match_ack_to_subframe(arrival) == i

    def test_unmatched_timestamp_raises(self):
        plan = SequentialAckPlan(2, TIMING)
        with pytest.raises(ValueError):
            plan.match_ack_to_subframe(plan.ack_start_time(0) + 20e-6)

    def test_position_bounds_checked(self):
        plan = SequentialAckPlan(2, TIMING)
        with pytest.raises(ValueError):
            plan.receiver_nav(2)
        with pytest.raises(ValueError):
            plan.ack_nav(-1)

    def test_single_receiver_degenerates_to_legacy(self):
        plan = SequentialAckPlan(1, TIMING)
        assert plan.ack_nav(0) == 0.0
        assert plan.ack_start_time(0) == pytest.approx(TIMING.sifs)

    def test_zero_receivers_rejected(self):
        with pytest.raises(ValueError):
            SequentialAckPlan(0, TIMING)
