import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.core import CarpoolTransmitter, MacAddress, SubframeSpec
from repro.core.compat import (
    AssociationTable,
    Capability,
    DualModeReceiver,
    FrameFormat,
    classify_frame,
)
from repro.phy import PhyTransmitter, mcs_by_name
from repro.util.rng import RngStream


def _legacy_frame(payload=b"legacy payload" * 8):
    return PhyTransmitter(mcs_by_name("QPSK-1/2"), coded=True).build_frame(payload)


def _carpool_frame(n=3, seed=0):
    rng = np.random.default_rng(seed)
    specs = [
        SubframeSpec(MacAddress.from_int(i),
                     bytes(rng.integers(0, 256, 150, dtype=np.uint8)),
                     mcs_by_name("QAM16-1/2"))
        for i in range(n)
    ]
    return CarpoolTransmitter(coded=True).build_frame(specs)


class TestAssociationTable:
    def test_negotiation(self):
        table = AssociationTable()
        carpool_sta = MacAddress.from_int(1)
        legacy_sta = MacAddress.from_int(2)
        table.associate(carpool_sta, Capability.DOT11N | Capability.CARPOOL)
        table.associate(legacy_sta, Capability.DOT11N)
        assert table.supports_carpool(carpool_sta)
        assert not table.supports_carpool(legacy_sta)
        assert table.carpool_stations() == [carpool_sta]
        assert table.legacy_stations() == [legacy_sta]

    def test_must_support_some_legacy_protocol(self):
        table = AssociationTable()
        with pytest.raises(ValueError):
            table.associate(MacAddress.from_int(3), Capability.CARPOOL)

    def test_disassociate(self):
        table = AssociationTable()
        mac = MacAddress.from_int(4)
        table.associate(mac, Capability.DOT11A)
        table.disassociate(mac)
        assert mac not in table
        with pytest.raises(KeyError):
            table.capabilities(mac)

    def test_unknown_station_not_carpool(self):
        assert not AssociationTable().supports_carpool(MacAddress.from_int(9))


class TestClassifyFrame:
    def test_legacy_detected(self):
        frame = _legacy_frame()
        assert classify_frame(frame.symbols) is FrameFormat.LEGACY

    def test_carpool_detected(self):
        frame = _carpool_frame()
        assert classify_frame(frame.symbols) is FrameFormat.CARPOOL

    def test_classification_survives_channel(self):
        channel = ChannelModel(snr_db=25, rng=RngStream(1))
        assert classify_frame(channel.transmit(_legacy_frame().symbols)) is FrameFormat.LEGACY
        channel2 = ChannelModel(snr_db=25, rng=RngStream(2))
        assert classify_frame(channel2.transmit(_carpool_frame().symbols)) is FrameFormat.CARPOOL

    def test_noise_undecodable(self):
        rng = RngStream(3).child("noise")
        garbage = rng.complex_normal(scale=1.0, size=(12, 52))
        assert classify_frame(garbage) is FrameFormat.UNDECODABLE

    def test_truncated_undecodable(self):
        assert classify_frame(np.zeros((3, 52), dtype=complex)) is FrameFormat.UNDECODABLE


class TestDualModeReceiver:
    def test_decodes_legacy(self):
        payload = b"for everyone" * 10
        frame = _legacy_frame(payload)
        rx = DualModeReceiver(MacAddress.from_int(0))
        result = rx.receive(frame.symbols)
        assert result.format is FrameFormat.LEGACY
        assert result.legacy.payload == payload
        assert result.carpool is None

    def test_decodes_carpool_own_subframe(self):
        frame = _carpool_frame()
        mac = MacAddress.from_int(1)
        result = DualModeReceiver(mac).receive(frame.symbols)
        assert result.format is FrameFormat.CARPOOL
        assert result.carpool.matched_positions == [1]
        expected = frame.subframe_for(mac).spec.payload
        assert result.carpool.subframes[0].payload == expected

    def test_over_noisy_channel(self):
        frame = _carpool_frame(seed=5)
        channel = ChannelModel(
            snr_db=28, rng=RngStream(6),
            profile=FadingProfile(coherence_time=50e-3),
        )
        received = channel.transmit(frame.symbols)
        result = DualModeReceiver(MacAddress.from_int(0)).receive(received)
        assert result.format is FrameFormat.CARPOOL
        assert result.carpool.matched_positions == [0]
