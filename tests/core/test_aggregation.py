import pytest

from repro.core.aggregation import (
    AggregationPolicy,
    AggregationQueue,
    QueuedFrame,
)
from repro.core.mac_address import MacAddress


def _frame(t, sta, size=300, sensitive=False, fid=0):
    return QueuedFrame(
        enqueue_time=t,
        receiver=MacAddress.from_int(sta),
        size_bytes=size,
        delay_sensitive=sensitive,
        frame_id=fid,
    )


class TestPolicy:
    def test_defaults_valid(self):
        policy = AggregationPolicy()
        assert policy.max_receivers == 8

    def test_too_many_receivers_rejected(self):
        with pytest.raises(ValueError):
            AggregationPolicy(max_receivers=9)

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(ValueError):
            AggregationPolicy(max_frame_bytes=0)
        with pytest.raises(ValueError):
            AggregationPolicy(max_latency=0.0)


class TestQueue:
    def test_empty_queue(self):
        q = AggregationQueue()
        assert len(q) == 0
        assert not q.should_flush(now=10.0)
        assert q.build_batch(now=10.0) is None

    def test_latency_deadline_triggers_flush(self):
        q = AggregationQueue(AggregationPolicy(max_latency=0.010))
        q.enqueue(_frame(1.000, sta=0))
        assert not q.should_flush(now=1.005)
        assert q.should_flush(now=1.011)

    def test_size_cap_triggers_flush(self):
        q = AggregationQueue(AggregationPolicy(max_frame_bytes=1000))
        q.enqueue(_frame(0.0, sta=0, size=600))
        assert not q.should_flush(now=0.0)
        q.enqueue(_frame(0.0, sta=1, size=600))
        assert q.should_flush(now=0.0)

    def test_batch_groups_by_receiver(self):
        q = AggregationQueue()
        q.enqueue(_frame(0.0, sta=0, fid=1))
        q.enqueue(_frame(0.0, sta=1, fid=2))
        q.enqueue(_frame(0.0, sta=0, fid=3))
        batch = q.build_batch(now=0.01)
        assert batch.num_receivers == 2
        assert batch.subframe_bytes(MacAddress.from_int(0)) == 600
        assert len(q) == 0

    def test_receiver_cap_respected(self):
        q = AggregationQueue()
        for i in range(10):
            q.enqueue(_frame(0.0, sta=i))
        batch = q.build_batch(now=0.01)
        assert batch.num_receivers == 8
        assert len(q) == 2  # two receivers left behind

    def test_frame_size_cap_respected(self):
        q = AggregationQueue(AggregationPolicy(max_frame_bytes=1000))
        q.enqueue(_frame(0.0, sta=0, size=700))
        q.enqueue(_frame(0.0, sta=1, size=700))
        batch = q.build_batch(now=0.01)
        assert batch.total_bytes == 700
        assert len(q) == 1

    def test_oversized_head_frame_not_wedged(self):
        q = AggregationQueue(AggregationPolicy(max_frame_bytes=500))
        q.enqueue(_frame(0.0, sta=0, size=900))
        batch = q.build_batch(now=0.01)
        assert batch.total_bytes == 900  # first frame always ships

    def test_subframe_cap_respected(self):
        q = AggregationQueue(AggregationPolicy(max_subframe_bytes=500))
        q.enqueue(_frame(0.0, sta=0, size=300, fid=1))
        q.enqueue(_frame(0.0, sta=0, size=300, fid=2))
        batch = q.build_batch(now=0.01)
        assert batch.subframe_bytes(MacAddress.from_int(0)) == 300
        assert len(q) == 1

    def test_delay_sensitive_first(self):
        q = AggregationQueue(AggregationPolicy(max_frame_bytes=600))
        q.enqueue(_frame(0.0, sta=0, size=600, fid=1))
        q.enqueue(_frame(0.5, sta=1, size=600, sensitive=True, fid=2))
        batch = q.build_batch(now=1.0)
        assert batch.receivers == [MacAddress.from_int(1)]

    def test_fifo_within_class(self):
        q = AggregationQueue(AggregationPolicy(max_frame_bytes=600))
        q.enqueue(_frame(0.2, sta=1, size=600, fid=2))
        q.enqueue(_frame(0.1, sta=0, size=600, fid=1))
        batch = q.build_batch(now=1.0)
        assert batch.receivers == [MacAddress.from_int(0)]

    def test_pending_bytes(self):
        q = AggregationQueue()
        q.enqueue(_frame(0.0, sta=0, size=100))
        q.enqueue(_frame(0.0, sta=1, size=150))
        assert q.pending_bytes == 250

    def test_invalid_frame_size_rejected(self):
        with pytest.raises(ValueError):
            _frame(0.0, sta=0, size=0)
