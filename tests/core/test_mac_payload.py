import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ChannelModel
from repro.core import CarpoolReceiver, CarpoolTransmitter, MacAddress, SubframeSpec
from repro.core.mac_payload import pack_mpdus, unpack_mpdus
from repro.mac.frame_formats import DataFrame
from repro.phy import mcs_by_name
from repro.util.rng import RngStream

AP = MacAddress.from_int(100)
BSS = MacAddress.from_int(200)


def _mpdu(dest_id, payload=b"data", seq=0):
    return DataFrame(
        receiver=MacAddress.from_int(dest_id), transmitter=AP, bssid=BSS,
        payload=payload, sequence=seq,
    )


class TestPackUnpack:
    def test_round_trip(self):
        frames = [_mpdu(1, b"first", 0), _mpdu(1, b"second", 1), _mpdu(1, b"x" * 500, 2)]
        packed = pack_mpdus(frames)
        recovered, salvaged, lost = unpack_mpdus(packed)
        assert salvaged == 3
        assert lost == 0
        assert [f.payload for f in recovered] == [b"first", b"second", b"x" * 500]
        assert [f.sequence for f in recovered] == [0, 1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_mpdus([])

    def test_corrupted_mpdu_salvages_others(self):
        frames = [_mpdu(1, b"a" * 60, i) for i in range(4)]
        packed = bytearray(pack_mpdus(frames))
        # Corrupt a byte inside the second MPDU's payload region.
        second_start = (4 + len(frames[0].to_bytes())) + 4 + 10
        packed[second_start] ^= 0xFF
        recovered, salvaged, lost = unpack_mpdus(bytes(packed))
        assert lost == 1
        assert salvaged == 3
        assert {f.sequence for f in recovered} == {0, 2, 3}

    def test_corrupted_delimiter_resyncs(self):
        frames = [_mpdu(1, b"a" * 40, i) for i in range(3)]
        packed = bytearray(pack_mpdus(frames))
        packed[2] = 0x00  # break the first delimiter's magic
        recovered, salvaged, lost = unpack_mpdus(bytes(packed))
        # First MPDU is unreachable, but resync finds the later ones.
        assert salvaged >= 2
        assert all(f.sequence in {1, 2} for f in recovered)

    def test_garbage_input_yields_nothing(self):
        rng = np.random.default_rng(0)
        garbage = rng.bytes(300)
        recovered, salvaged, lost = unpack_mpdus(garbage)
        assert salvaged == 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=6))
    def test_property_round_trip(self, payloads):
        frames = [_mpdu(1, p, i) for i, p in enumerate(payloads)]
        recovered, salvaged, lost = unpack_mpdus(pack_mpdus(frames))
        assert salvaged == len(payloads)
        assert [f.payload for f in recovered] == payloads


class TestEndToEndMacOverCarpool:
    def test_real_mpdus_through_carpool_phy(self):
        """MAC DataFrames → A-MPDU packing → Carpool subframe → channel →
        Carpool receiver → MPDU unpack → FCS-verified DataFrames."""
        rng = np.random.default_rng(1)
        sta = MacAddress.from_int(3)
        mpdus = [
            DataFrame(receiver=sta, transmitter=AP, bssid=BSS,
                      payload=bytes(rng.integers(0, 256, 120, dtype=np.uint8)),
                      sequence=i)
            for i in range(3)
        ]
        subframe_payload = pack_mpdus(mpdus)
        spec = SubframeSpec(sta, subframe_payload, mcs_by_name("QAM16-1/2"))
        frame = CarpoolTransmitter(coded=True).build_frame([spec])
        channel = ChannelModel(snr_db=30, rng=RngStream(2))
        result = CarpoolReceiver(sta, coded=True).receive(channel.transmit(frame.symbols))
        assert result.matched_positions == [0]
        recovered, salvaged, lost = unpack_mpdus(result.subframes[0].payload)
        assert salvaged == 3
        assert lost == 0
        assert [f.payload for f in recovered] == [m.payload for m in mpdus]
        assert all(f.receiver == sta for f in recovered)
