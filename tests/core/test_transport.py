import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.core.mac_address import MacAddress
from repro.core.transport import CarpoolLink
from repro.util.rng import RngStream

STATIONS = [MacAddress.from_int(i) for i in range(3)]


class _CleanChannel:
    """Loopback stand-in."""

    def transmit(self, symbols):
        return symbols


def _payloads(rng, count, size=150):
    return [bytes(rng.integers(0, 256, size, dtype=np.uint8)) for _ in range(count)]


class TestCleanDelivery:
    def test_everything_arrives_in_one_round(self):
        rng = np.random.default_rng(0)
        link = CarpoolLink(_CleanChannel(), STATIONS)
        expected = {}
        for mac in STATIONS:
            expected[mac] = _payloads(rng, 3)
            for payload in expected[mac]:
                link.send(mac, payload)
        report = link.run()
        assert report.all_delivered()
        assert report.transmissions == 1
        assert report.retransmitted_mpdus == 0
        for mac in STATIONS:
            assert report.delivered[mac] == expected[mac]

    def test_ordering_preserved(self):
        link = CarpoolLink(_CleanChannel(), STATIONS[:1])
        for i in range(5):
            link.send(STATIONS[0], bytes([i]) * 20)
        report = link.run()
        assert report.delivered[STATIONS[0]] == [bytes([i]) * 20 for i in range(5)]

    def test_windows_split_large_queues(self):
        rng = np.random.default_rng(1)
        link = CarpoolLink(_CleanChannel(), STATIONS[:1])
        for payload in _payloads(rng, 20, size=100):  # > 8-MPDU window
            link.send(STATIONS[0], payload)
        report = link.run()
        assert report.all_delivered()
        assert report.transmissions >= 3

    def test_unknown_station_rejected(self):
        link = CarpoolLink(_CleanChannel(), STATIONS)
        with pytest.raises(KeyError):
            link.send(MacAddress.from_int(99), b"nope")

    def test_empty_run_no_transmissions(self):
        report = CarpoolLink(_CleanChannel(), STATIONS).run()
        assert report.transmissions == 0
        assert report.all_delivered()


class TestLossyDelivery:
    def test_recovers_over_noisy_channel(self):
        """BlockAck-driven retransmission drains the queue over a channel
        that corrupts a noticeable fraction of MPDUs."""
        rng = np.random.default_rng(2)
        channel = ChannelModel(
            snr_db=17.0, rng=RngStream(3),
            profile=FadingProfile(num_taps=2, delay_spread_taps=0.35,
                                  ricean_k_db=12.0, coherence_time=30e-3),
        )
        link = CarpoolLink(channel, STATIONS, max_rounds=12)
        expected = {}
        for mac in STATIONS:
            expected[mac] = _payloads(rng, 4, size=120)
            for payload in expected[mac]:
                link.send(mac, payload)
        report = link.run()
        assert report.all_delivered(), f"undelivered: {report.undelivered}"
        assert report.retransmitted_mpdus > 0, "the channel should bite"
        for mac in STATIONS:
            assert sorted(report.delivered[mac]) == sorted(expected[mac])

    def test_in_order_delivery_despite_losses(self):
        """The reorder buffer holds later MPDUs until the missing one is
        retransmitted — upper-layer delivery stays in sequence order."""
        rng = np.random.default_rng(7)
        channel = ChannelModel(
            snr_db=14.0, rng=RngStream(11),
            profile=FadingProfile(num_taps=2, delay_spread_taps=0.35,
                                  ricean_k_db=8.0, coherence_time=30e-3),
        )
        stations = [MacAddress.from_int(i) for i in range(4)]
        link = CarpoolLink(channel, stations, max_rounds=20)
        expected = {}
        for mac in stations:
            expected[mac] = _payloads(rng, 4, size=140)
            for payload in expected[mac]:
                link.send(mac, payload)
        report = link.run()
        assert report.all_delivered()
        assert report.retransmitted_mpdus > 0
        for mac in stations:
            assert report.delivered[mac] == expected[mac], "order must hold"

    def test_no_duplicates_despite_retransmission(self):
        channel = ChannelModel(
            snr_db=18.0, rng=RngStream(4),
            profile=FadingProfile(num_taps=2, delay_spread_taps=0.35,
                                  ricean_k_db=12.0, coherence_time=30e-3),
        )
        link = CarpoolLink(channel, STATIONS[:2], max_rounds=12)
        rng = np.random.default_rng(5)
        for mac in STATIONS[:2]:
            for payload in _payloads(rng, 5, size=100):
                link.send(mac, payload)
        report = link.run()
        for mac in STATIONS[:2]:
            delivered = report.delivered[mac]
            assert len(delivered) == len(set(delivered)) or len(delivered) == 5

    def test_retry_budget_bounds_work(self):
        class _BlackHole:
            def transmit(self, symbols):
                return symbols * 0  # nothing survives

        link = CarpoolLink(_BlackHole(), STATIONS[:1], max_rounds=3)
        link.send(STATIONS[0], b"x" * 50)
        report = link.run()
        assert report.transmissions == 3
        assert report.undelivered == 1
        assert not report.all_delivered()
