import numpy as np
import pytest

from repro.core.frame import SubframeSpec
from repro.core.mac_address import MacAddress
from repro.core.mimo import (
    MuMimoCarpoolReceiver,
    MuMimoCarpoolTransmitter,
    transmissions_required,
)
from repro.phy.mimo import MimoChannel, zero_forcing_precoder
from repro.phy.mcs import mcs_by_name
from repro.util.rng import RngStream


def _channel(num_users=4, num_antennas=2, seed=0):
    return MimoChannel(num_users, num_antennas, RngStream(seed))


def _specs(n=4, size=150, seed=1):
    rng = np.random.default_rng(seed)
    mcs = mcs_by_name("QPSK-1/2")
    return [
        SubframeSpec(MacAddress.from_int(i),
                     bytes(rng.integers(0, 256, size, dtype=np.uint8)), mcs)
        for i in range(n)
    ]


class TestMimoChannel:
    def test_shapes(self):
        ch = _channel()
        assert ch.matrix.shape == (4, 2, 52)
        assert ch.user_channel(1).shape == (2, 52)
        assert ch.group_matrix([0, 2], 10).shape == (2, 2)

    def test_unit_average_power(self):
        ch = _channel(num_users=20, num_antennas=4, seed=3)
        assert np.mean(np.abs(ch.matrix) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_propagate_shapes_and_noise(self):
        ch = _channel()
        streams = np.ones((2, 5, 52), dtype=complex)
        out = ch.propagate(streams, snr_db=20.0, rng=RngStream(4))
        assert out.shape == (4, 5, 52)

    def test_propagate_wrong_antennas_rejected(self):
        ch = _channel()
        with pytest.raises(ValueError):
            ch.propagate(np.ones((3, 5, 52), dtype=complex), 20.0, RngStream(0))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MimoChannel(0, 2, RngStream(0))


class TestZeroForcing:
    def test_nulls_other_users(self):
        ch = _channel(seed=5)
        users = [0, 1]
        w = zero_forcing_precoder(ch, users)
        for k in (0, 25, 51):
            h = ch.group_matrix(users, k)  # (2 users, 2 antennas)
            gains = h @ w[:, :, k]  # (user, stream)
            # Off-diagonal (interference) terms are nulled.
            assert abs(gains[0, 1]) < 1e-9
            assert abs(gains[1, 0]) < 1e-9
            # Own-stream gains are non-trivial.
            assert abs(gains[0, 0]) > 0.05
            assert abs(gains[1, 1]) > 0.05

    def test_unit_power_columns(self):
        ch = _channel(seed=6)
        w = zero_forcing_precoder(ch, [2, 3])
        norms = np.linalg.norm(w, axis=0)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_too_many_streams_rejected(self):
        ch = _channel(num_antennas=2)
        with pytest.raises(ValueError):
            zero_forcing_precoder(ch, [0, 1, 2])


class TestTransmissionsRequired:
    def test_paper_example(self):
        """Fig. 18: 2-antenna AP, 4 stations — 802.11ac needs 2 accesses,
        Carpool needs 1."""
        assert transmissions_required(4, 2, carpool=False) == 2
        assert transmissions_required(4, 2, carpool=True) == 1

    def test_scales_with_groups(self):
        assert transmissions_required(16, 2, carpool=True) == 1  # 8 groups
        assert transmissions_required(17, 2, carpool=True) == 2
        assert transmissions_required(16, 2, carpool=False) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            transmissions_required(0, 2, True)


class TestMuMimoFrame:
    def test_layout_two_groups(self):
        ch = _channel()
        frame = MuMimoCarpoolTransmitter(ch).build_frame(_specs())
        assert len(frame.layout.groups) == 2
        g0, g1 = frame.layout.groups
        assert g0.num_streams == 2
        assert g0.vht_start == 6  # preamble(4) + A-HDR(2)
        assert g0.sig_index == g0.vht_start + 2
        assert g1.vht_start == g0.end
        assert frame.n_symbols == frame.layout.n_symbols

    def test_all_four_stations_decode_noiseless_channel(self):
        ch = _channel(seed=7)
        specs = _specs(seed=8)
        tx = MuMimoCarpoolTransmitter(ch)
        frame = tx.build_frame(specs)
        received = ch.propagate(frame.antenna_streams, snr_db=80.0, rng=RngStream(9))
        for i, spec in enumerate(specs):
            rx = MuMimoCarpoolReceiver(spec.receiver)
            result = rx.receive(received[i], frame.layout)
            assert result.matched_groups == [i // 2]
            assert result.error is None, result.error
            assert result.payload == spec.payload

    def test_decodes_at_moderate_snr(self):
        ch = _channel(seed=10)
        specs = _specs(seed=11)
        frame = MuMimoCarpoolTransmitter(ch).build_frame(specs)
        received = ch.propagate(frame.antenna_streams, snr_db=30.0, rng=RngStream(12))
        ok = 0
        for i, spec in enumerate(specs):
            result = MuMimoCarpoolReceiver(spec.receiver).receive(received[i], frame.layout)
            ok += result.payload == spec.payload
        assert ok >= 3  # allow one marginal user at 30 dB

    def test_bystander_matches_nothing(self):
        ch = _channel(seed=13)
        frame = MuMimoCarpoolTransmitter(ch).build_frame(_specs(seed=14))
        received = ch.propagate(frame.antenna_streams, snr_db=60.0, rng=RngStream(15))
        stranger = MuMimoCarpoolReceiver(MacAddress.from_int(50))
        result = stranger.receive(received[0], frame.layout)
        assert result.matched_groups == []
        assert result.payload is None

    def test_unequal_subframe_lengths_padded(self):
        ch = _channel(seed=16)
        rng = np.random.default_rng(17)
        mcs = mcs_by_name("QPSK-1/2")
        specs = [
            SubframeSpec(MacAddress.from_int(0), rng.bytes(100), mcs),
            SubframeSpec(MacAddress.from_int(1), rng.bytes(400), mcs),
        ]
        frame = MuMimoCarpoolTransmitter(ch).build_frame(specs)
        received = ch.propagate(frame.antenna_streams, snr_db=80.0, rng=RngStream(18))
        for i, spec in enumerate(specs):
            result = MuMimoCarpoolReceiver(spec.receiver).receive(received[i], frame.layout)
            assert result.payload == spec.payload

    def test_too_many_groups_rejected(self):
        ch = MimoChannel(20, 2, RngStream(19))
        with pytest.raises(ValueError):
            MuMimoCarpoolTransmitter(ch).build_frame(_specs(n=18))

    def test_duplicate_receiver_rejected(self):
        ch = _channel()
        specs = _specs(n=2)
        with pytest.raises(ValueError):
            MuMimoCarpoolTransmitter(ch).build_frame([specs[0], specs[0]])
