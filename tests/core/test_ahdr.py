import numpy as np
import pytest

from repro.core.ahdr import (
    AHDR_BITS,
    AHDR_SYMBOLS,
    MAX_RECEIVERS,
    ahdr_overhead_ratio,
    build_ahdr_filter,
    decode_ahdr,
    encode_ahdr,
    naive_header_bits,
)
from repro.core.mac_address import MacAddress


def _macs(n):
    return [MacAddress.from_int(i) for i in range(n)]


class TestMacAddress:
    def test_from_string_round_trip(self):
        mac = MacAddress.from_string("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"

    def test_from_int(self):
        assert bytes(MacAddress.from_int(1))[-1] == 1

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x01\x02")

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            MacAddress.from_string("02:00:00")

    def test_hashable_and_equal(self):
        assert MacAddress.from_int(5) == MacAddress.from_int(5)
        assert len({MacAddress.from_int(5), MacAddress.from_int(5)}) == 1


class TestFilterBuild:
    def test_all_receivers_match_their_position(self):
        macs = _macs(8)
        pbf = build_ahdr_filter(macs)
        for pos, mac in enumerate(macs):
            assert pbf.matches(bytes(mac), pos)

    def test_too_many_receivers_rejected(self):
        with pytest.raises(ValueError):
            build_ahdr_filter(_macs(9))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_ahdr_filter([])


class TestEncodeDecode:
    def test_symbol_count(self):
        symbols = encode_ahdr(_macs(4))
        assert symbols.shape == (AHDR_SYMBOLS, 52)

    def test_noiseless_round_trip(self):
        macs = _macs(6)
        symbols = encode_ahdr(macs)
        bloom = decode_ahdr(symbols)
        for pos, mac in enumerate(macs):
            assert bloom.matches(bytes(mac), pos)

    def test_outsider_rarely_matches(self):
        macs = _macs(4)
        bloom = decode_ahdr(encode_ahdr(macs))
        outsider = MacAddress.from_int(1000)
        matches = bloom.matching_positions(bytes(outsider), 4)
        assert len(matches) <= 1  # FP ratio ≈ 0.6 % per position at N=4

    def test_survives_noise(self):
        rng = np.random.default_rng(0)
        macs = _macs(8)
        symbols = encode_ahdr(macs)
        noisy = symbols + 0.2 * (
            rng.normal(size=symbols.shape) + 1j * rng.normal(size=symbols.shape)
        )
        bloom = decode_ahdr(noisy)
        for pos, mac in enumerate(macs):
            assert bloom.matches(bytes(mac), pos)

    def test_wrong_symbol_count_raises(self):
        with pytest.raises(ValueError):
            decode_ahdr(np.zeros((3, 52), dtype=complex))


class TestOverheadAnalysis:
    def test_naive_header_for_8_receivers_is_384_bits(self):
        assert naive_header_bits(8) == 384

    def test_ahdr_overhead_is_12_5_percent(self):
        """§4.1: 48 bits vs 384 bits = 12.5 % overhead."""
        assert ahdr_overhead_ratio(MAX_RECEIVERS) == pytest.approx(0.125)

    def test_ahdr_is_48_bits(self):
        assert AHDR_BITS == 48
