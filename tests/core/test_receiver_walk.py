"""Negative paths of the Carpool receiver's subframe walk."""

import numpy as np
import pytest

from repro.core import CarpoolReceiver, CarpoolTransmitter, MacAddress, SubframeSpec
from repro.core.frame import AHDR_SYMBOL_OFFSET
from repro.phy import mcs_by_name
from repro.util.rng import RngStream


def _frame(sizes=(200, 300), seed=0, mcs="QAM16-1/2"):
    rng = np.random.default_rng(seed)
    specs = [
        SubframeSpec(MacAddress.from_int(i),
                     bytes(rng.integers(0, 256, s, dtype=np.uint8)),
                     mcs_by_name(mcs))
        for i, s in enumerate(sizes)
    ]
    return CarpoolTransmitter(coded=True).build_frame(specs), specs


class TestWalkErrors:
    def test_truncated_frame_reports_overrun(self):
        frame, _ = _frame()
        first_end = frame.subframes[0].end_symbol
        truncated = frame.symbols[: first_end + 1]  # second SIG but no payload
        result = CarpoolReceiver(MacAddress.from_int(1)).receive(truncated)
        assert result.walk_error is not None
        assert "overruns" in result.walk_error

    def test_first_subframe_still_decodes_from_truncated_frame(self):
        """Losing the tail must not cost the receivers of earlier
        subframes their data."""
        frame, specs = _frame()
        first_end = frame.subframes[0].end_symbol
        truncated = frame.symbols[: first_end + 1]
        result = CarpoolReceiver(specs[0].receiver).receive(truncated)
        assert result.matched_positions == [0]
        assert result.subframes[0].payload == specs[0].payload

    def test_garbage_sig_stops_walk(self):
        frame, specs = _frame()
        corrupted = frame.symbols.copy()
        sig_index = frame.subframes[1].sig_symbol_index
        rng = RngStream(7).child("g")
        corrupted[sig_index] = rng.complex_normal(scale=1.0, size=52)
        result = CarpoolReceiver(specs[1].receiver).receive(corrupted)
        # The walk stops at the broken SIG; subframe 1 is unreachable.
        assert result.walk_error is not None or result.subframes == []

    def test_walk_counts_subframes_seen(self):
        frame, _ = _frame(sizes=(100, 100, 100, 100))
        stranger = CarpoolReceiver(MacAddress.from_int(50))
        result = stranger.receive(frame.symbols)
        assert result.num_subframes_seen == 4
        assert result.walk_error is None

    def test_corrupted_ahdr_never_loses_own_subframe_entirely(self):
        """A-HDR bit flips may add false positives but (with the Bloom
        property intact) often keep true positives; with the whole A-HDR
        replaced by noise, the receiver simply matches nothing — never
        crashes."""
        frame, specs = _frame()
        corrupted = frame.symbols.copy()
        rng = RngStream(8).child("g")
        corrupted[AHDR_SYMBOL_OFFSET] = rng.complex_normal(scale=1.0, size=52)
        corrupted[AHDR_SYMBOL_OFFSET + 1] = rng.complex_normal(scale=1.0, size=52)
        result = CarpoolReceiver(specs[0].receiver).receive(corrupted)
        assert isinstance(result.matched_positions, list)  # no crash

    def test_decode_all_bypasses_bloom(self):
        frame, specs = _frame()
        result = CarpoolReceiver(MacAddress.from_int(50),
                                 decode_all=True).receive(frame.symbols)
        assert [sf.position for sf in result.subframes] == [0, 1]
        assert result.subframes[0].payload == specs[0].payload

    def test_mixed_mcs_walk(self):
        rng = np.random.default_rng(3)
        specs = [
            SubframeSpec(MacAddress.from_int(0), rng.bytes(150), mcs_by_name("BPSK-1/2")),
            SubframeSpec(MacAddress.from_int(1), rng.bytes(150), mcs_by_name("QAM64-2/3")),
            SubframeSpec(MacAddress.from_int(2), rng.bytes(150), mcs_by_name("QPSK-3/4")),
        ]
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        for spec in specs:
            result = CarpoolReceiver(spec.receiver).receive(frame.symbols)
            assert result.subframes[0].payload == spec.payload
            assert result.subframes[0].sig.mcs is spec.mcs
