"""Co-channel coupling: geometry, duty estimates, fault-plan synthesis."""

import pytest

from repro.channel.path_loss import LogDistancePathLoss
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.net.interference import (
    DEFAULT_CS_THRESHOLD_DBM,
    background_duty,
    carrier_sense_range,
    coupling_fault_plans,
    estimated_duty,
    neighbor_busy_windows,
    overlap_factor,
)
from repro.net.topology import Arena, build_topology
from repro.util.rng import RngStream


class TestCarrierSenseRange:
    def test_default_range_is_tens_of_metres(self):
        assert 10.0 < carrier_sense_range() < 100.0

    def test_more_power_reaches_further(self):
        assert carrier_sense_range(tx_power_dbm=20.0) > carrier_sense_range(
            tx_power_dbm=6.0)

    def test_exhausted_budget_collapses_to_reference_distance(self):
        model = LogDistancePathLoss()
        got = carrier_sense_range(model, tx_power_dbm=-100.0)
        assert got == model.reference_distance_m


class TestOverlapFactor:
    def test_endpoints(self):
        assert overlap_factor(0.0, 40.0) == 1.0
        assert overlap_factor(80.0, 40.0) == 0.0
        assert overlap_factor(500.0, 40.0) == 0.0

    def test_monotone_in_distance(self):
        factors = [overlap_factor(d, 40.0) for d in (0.0, 20.0, 40.0, 60.0)]
        assert factors == sorted(factors, reverse=True)

    def test_rejects_non_positive_range(self):
        with pytest.raises(ValueError):
            overlap_factor(10.0, 0.0)


class TestDutyEstimates:
    def test_cbr_duty_zero_without_load(self):
        assert estimated_duty(0, 100.0, 120) == 0.0
        assert estimated_duty(5, 0.0, 120) == 0.0

    def test_cbr_duty_scales_with_stations(self):
        low = estimated_duty(2, 100.0, 120)
        high = estimated_duty(8, 100.0, 120)
        assert 0.0 < low < high

    def test_cbr_duty_clamped(self):
        assert estimated_duty(10_000, 1000.0, 1500) == 0.9
        assert estimated_duty(10_000, 1000.0, 1500, ceiling=0.5) == 0.5

    def test_background_duty_zero_without_clients_or_intensity(self):
        assert background_duty(0) == 0.0
        assert background_duty(4, intensity=0.0) == 0.0

    def test_background_duty_positive_and_clamped(self):
        some = background_duty(4, intensity=3.0, params=DEFAULT_PARAMETERS)
        assert 0.0 < some <= 0.9
        assert background_duty(10_000, intensity=100.0) == 0.9


class TestBusyWindows:
    def test_validation(self):
        rng = RngStream(0).child("w")
        with pytest.raises(ValueError):
            neighbor_busy_windows(0.0, 0.1, rng)
        with pytest.raises(ValueError):
            neighbor_busy_windows(1.0, 1.0, rng)
        with pytest.raises(ValueError):
            neighbor_busy_windows(1.0, -0.1, rng)

    def test_zero_duty_means_no_windows(self):
        assert neighbor_busy_windows(10.0, 0.0, RngStream(0).child("w")) == []

    def test_deterministic_per_stream(self):
        a = neighbor_busy_windows(10.0, 0.4, RngStream(3).child("w"))
        b = neighbor_busy_windows(10.0, 0.4, RngStream(3).child("w"))
        c = neighbor_busy_windows(10.0, 0.4, RngStream(4).child("w"))
        assert a == b
        assert a != c

    def test_windows_ordered_disjoint_and_inside_run(self):
        windows = neighbor_busy_windows(10.0, 0.5, RngStream(7).child("w"))
        assert windows
        previous_stop = 0.0
        for start, stop in windows:
            assert 0.0 <= start < stop <= 10.0
            assert start >= previous_stop
            previous_stop = stop

    def test_max_windows_cap(self):
        windows = neighbor_busy_windows(
            1000.0, 0.5, RngStream(1).child("w"), max_windows=5)
        assert len(windows) == 5

    def test_duty_roughly_respected(self):
        duty = 0.4
        windows = neighbor_busy_windows(
            2000.0, duty, RngStream(11).child("w"), max_windows=10_000)
        busy = sum(stop - start for start, stop in windows)
        assert busy / 2000.0 == pytest.approx(duty, rel=0.35)


class TestCouplingPlans:
    def _dense_topology(self, seed=5, n_aps=4, channels=1):
        # A small arena guarantees the grid cells overlap.
        return build_topology(n_aps, n_aps, seed, arena=Arena(20.0, 20.0),
                              channels=channels)

    def test_disjoint_channels_yield_no_plans(self):
        topo = self._dense_topology(channels=4)
        plans = coupling_fault_plans(topo, 5.0, 5, {a.index: 0.5 for a in topo.aps})
        assert all(plan is None for plan in plans.values())

    def test_overlapping_co_channel_cells_are_coupled(self):
        topo = self._dense_topology(channels=1)
        plans = coupling_fault_plans(topo, 5.0, 5, {a.index: 0.5 for a in topo.aps})
        assert all(plan is not None for plan in plans.values())
        for plan in plans.values():
            assert all(s.kind == "hidden_window" for s in plan.specs)

    def test_distant_cells_decouple(self):
        topo = build_topology(2, 2, 5, arena=Arena(2000.0, 2000.0), channels=1)
        plans = coupling_fault_plans(topo, 5.0, 5, {0: 0.5, 1: 0.5})
        assert plans == {0: None, 1: None}

    def test_plans_deterministic(self):
        topo = self._dense_topology()
        duty = {a.index: 0.5 for a in topo.aps}
        assert coupling_fault_plans(topo, 5.0, 9, duty) == \
            coupling_fault_plans(topo, 5.0, 9, duty)

    def test_pair_sees_one_shared_schedule(self):
        # Victim i's windows sourced from cell j must be exactly cell j's
        # own busy schedule — drawn once from j's dedicated stream.
        topo = self._dense_topology(n_aps=2)
        plans = coupling_fault_plans(topo, 5.0, 9, {0: 0.5, 1: 0.5})
        expected = neighbor_busy_windows(
            5.0, 0.5, RngStream(9).child("net-interference-cell1"))
        got = [(s.start, s.stop) for s in plans[0].specs]
        assert got == expected

    def test_hit_probability_scaled_by_overlap(self):
        topo = self._dense_topology(n_aps=2)
        plans = coupling_fault_plans(topo, 5.0, 9, {0: 0.5, 1: 0.5},
                                     hit_probability=0.8)
        import math

        a, b = topo.aps
        factor = overlap_factor(
            math.hypot(a.x - b.x, a.y - b.y),
            carrier_sense_range(topo.path_loss,
                                cs_threshold_dbm=DEFAULT_CS_THRESHOLD_DBM),
        )
        for spec in plans[0].specs:
            assert spec.probability == pytest.approx(0.8 * factor)

    def test_hit_probability_validated(self):
        topo = self._dense_topology(n_aps=2)
        with pytest.raises(ValueError):
            coupling_fault_plans(topo, 5.0, 9, {0: 0.5, 1: 0.5},
                                 hit_probability=1.5)

    def test_zero_duty_cells_emit_no_windows(self):
        topo = self._dense_topology(n_aps=2)
        plans = coupling_fault_plans(topo, 5.0, 9, {0: 0.0, 1: 0.0})
        assert plans == {0: None, 1: None}
