"""Association timelines, roaming, and the §4.3 handshake wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compat import Capability
from repro.net.roaming import (
    AP_CAPABILITIES,
    CARPOOL_STA_CAPABILITIES,
    LEGACY_STA_CAPABILITIES,
    RandomWaypointMobility,
    build_association_timeline,
    sta_mac,
)
from repro.net.topology import Arena, build_topology


def _topology(seed=7, n_aps=4, n_stas=8, **kwargs):
    return build_topology(n_aps, n_stas, seed, **kwargs)


class TestMobility:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(min_speed_mps=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(min_speed_mps=2.0, max_speed_mps=1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sample_interval_s=0.0)

    def test_trajectory_deterministic_and_bounded(self):
        from repro.util.rng import RngStream

        mob = RandomWaypointMobility(sample_interval_s=0.25)
        arena = Arena(20.0, 20.0)
        a = mob.trajectory((5.0, 5.0), 10.0, arena, RngStream(3).child("walk"))
        b = mob.trajectory((5.0, 5.0), 10.0, arena, RngStream(3).child("walk"))
        assert a == b
        assert a[0] == (0.0, 5.0, 5.0)
        assert len(a) == 41  # 10 s at 0.25 s steps, plus t=0
        for _t, x, y in a:
            assert 0.0 <= x <= 20.0 and 0.0 <= y <= 20.0

    def test_pedestrian_speed_respected(self):
        from repro.util.rng import RngStream

        mob = RandomWaypointMobility(min_speed_mps=0.5, max_speed_mps=1.5,
                                     pause_s=0.0, sample_interval_s=0.5)
        samples = mob.trajectory((1.0, 1.0), 20.0, Arena(50.0, 50.0),
                                 RngStream(1).child("walk"))
        for (t0, x0, y0), (t1, x1, y1) in zip(samples, samples[1:]):
            dist = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
            assert dist <= 1.5 * (t1 - t0) + 1e-9


class TestStaticTimeline:
    def test_every_station_covered_for_whole_run(self):
        topo = _topology()
        timeline = build_association_timeline(topo, duration=5.0, seed=7)
        for sta in range(8):
            segments = timeline.segments_for(sta)
            assert len(segments) == 1
            assert segments[0].start == 0.0 and segments[0].stop == 5.0
        assert timeline.n_roams == 0
        assert timeline.interruption_time == 0.0

    def test_station_joins_strongest_ap(self):
        topo = _topology()
        timeline = build_association_timeline(topo, duration=1.0, seed=7)
        for sta in range(8):
            assert timeline.association_at(sta, 0.5) == topo.strongest_ap(sta)

    def test_handshake_wires_association_tables(self):
        # Satellite check: roaming really drives repro.mac.association —
        # each AP's table holds exactly its members with negotiated caps.
        topo = _topology()
        timeline = build_association_timeline(topo, duration=1.0, seed=7)
        for ap in topo.aps:
            service = timeline.services[ap.index]
            members = timeline.members(ap.index)
            for sta in members:
                caps = service.table.capabilities(sta_mac(sta))
                assert caps == (AP_CAPABILITIES & CARPOOL_STA_CAPABILITIES)
            assert len(service.carpool_capable_stations()) == len(members)

    def test_negotiation_intersects_capabilities(self):
        topo = _topology(n_stas=4)
        timeline = build_association_timeline(topo, duration=1.0, seed=7,
                                              legacy_fraction=1.0)
        for sta in range(4):
            negotiated = timeline.negotiated[sta]
            assert negotiated == (AP_CAPABILITIES & LEGACY_STA_CAPABILITIES)
            assert not negotiated & Capability.CARPOOL
        for ap in topo.aps:
            assert timeline.carpool_stations(ap.index) == []
            assert timeline.services[ap.index].carpool_capable_stations() == []

    def test_legacy_fraction_partitions_stations(self):
        topo = _topology(n_stas=40)
        timeline = build_association_timeline(topo, duration=1.0, seed=7,
                                              legacy_fraction=0.5)
        carpool = sum(
            bool(timeline.negotiated[s] & Capability.CARPOOL) for s in range(40)
        )
        assert 0 < carpool < 40
        for ap in topo.aps:
            members = set(timeline.members(ap.index))
            names = set(timeline.carpool_stations(ap.index)) | set(
                timeline.legacy_stations(ap.index))
            assert names == {f"sta{s}" for s in members}

    def test_validation(self):
        topo = _topology(n_aps=1, n_stas=1)
        with pytest.raises(ValueError):
            build_association_timeline(topo, duration=0.0, seed=1)
        with pytest.raises(ValueError):
            build_association_timeline(topo, duration=1.0, seed=1,
                                       legacy_fraction=1.5)
        with pytest.raises(ValueError):
            build_association_timeline(topo, duration=1.0, seed=1,
                                       handoff_delay=-0.1)


class TestRoamingTimeline:
    def _roaming_timeline(self, seed=5, duration=20.0, hysteresis_db=3.0):
        topo = _topology(seed=seed, n_aps=4, n_stas=6,
                         arena=Arena(40.0, 40.0))
        mobility = RandomWaypointMobility(min_speed_mps=1.0,
                                          max_speed_mps=1.5, pause_s=0.5)
        return topo, build_association_timeline(
            topo, duration=duration, seed=seed, mobility=mobility,
            hysteresis_db=hysteresis_db,
        )

    def test_deterministic(self):
        _, a = self._roaming_timeline()
        _, b = self._roaming_timeline()
        assert a.segments == b.segments
        assert a.events == b.events

    def test_segments_tile_the_run_with_handoff_gaps(self):
        _, timeline = self._roaming_timeline()
        for sta in range(6):
            segments = timeline.segments_for(sta)
            assert segments[0].start == 0.0
            assert segments[-1].stop == timeline.duration
            for earlier, later in zip(segments, segments[1:]):
                gap = later.start - earlier.stop
                assert 0.0 <= gap <= timeline.handoff_delay + 1e-9

    def test_roam_events_match_segment_transitions(self):
        _, timeline = self._roaming_timeline()
        for event in timeline.events:
            segments = timeline.segments_for(event.sta_index)
            froms = [s.ap_index for s in segments]
            assert event.from_ap in froms and event.to_ap in froms
            # During the handoff gap the station is in no cell.
            mid = event.time + timeline.handoff_delay / 2.0
            if mid < timeline.duration:
                assert timeline.association_at(event.sta_index, mid) is None

    def test_old_ap_drops_roamed_station(self):
        topo, timeline = self._roaming_timeline()
        if not timeline.events:
            pytest.skip("this seed produced no roams")
        for event in timeline.events:
            sta = event.sta_index
            final_ap = timeline.segments_for(sta)[-1].ap_index
            mac = sta_mac(sta)
            for ap in topo.aps:
                present = mac in timeline.services[ap.index].table
                assert present == (ap.index == final_ap)

    def test_huge_hysteresis_suppresses_roams(self):
        _, timeline = self._roaming_timeline(hysteresis_db=200.0)
        assert timeline.n_roams == 0

    def test_interruption_time_counts_gaps(self):
        _, timeline = self._roaming_timeline()
        expected = sum(
            min(timeline.handoff_delay, timeline.duration - e.time)
            for e in timeline.events
        )
        assert timeline.interruption_time == pytest.approx(expected)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_any_seed_yields_valid_timeline(self, seed):
        topo = build_topology(3, 4, seed, arena=Arena(30.0, 30.0))
        timeline = build_association_timeline(
            topo, duration=6.0, seed=seed,
            mobility=RandomWaypointMobility(min_speed_mps=1.0,
                                            max_speed_mps=1.5),
            hysteresis_db=3.0,
        )
        for sta in range(4):
            segments = timeline.segments_for(sta)
            assert segments, f"sta{sta} has no segments"
            assert segments[0].start == 0.0
            assert segments[-1].stop == 6.0
            for earlier, later in zip(segments, segments[1:]):
                assert earlier.stop <= later.start + 1e-12
                assert earlier.ap_index != later.ap_index
