"""The deployment layer is a composition, not a fork, of the single-cell
engine: a degenerate deployment must reproduce the existing machinery bit
for bit, and results must be invariant to worker count and cache replay.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.protocols import PROTOCOLS
from repro.mac.scenarios import CbrScenario
from repro.net.aggregate import DeploymentAggregate
from repro.net.deployment import (
    CellResult,
    DeploymentConfig,
    DeploymentResult,
    build_cell_specs,
    cell_seed,
    run_cell,
    simulate_deployment,
)
from repro.runtime.cache import ResultCache


def _fast_config(**overrides):
    base = dict(
        n_aps=4, stas_per_ap=2, duration=0.4, seed=42,
        protocol="Carpool", channels=1, arena_width_m=30.0,
        arena_height_m=30.0,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=str(tmp_path), namespace="deployment")


class TestConfigValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DeploymentConfig(n_aps=0)
        with pytest.raises(ValueError):
            DeploymentConfig(stas_per_ap=-1)
        with pytest.raises(ValueError):
            DeploymentConfig(duration=0.0)
        with pytest.raises(ValueError):
            DeploymentConfig(protocol="Token-Ring")
        with pytest.raises(ValueError):
            DeploymentConfig(legacy_fraction=2.0)

    def test_payload_is_json_stable(self):
        import json

        payload = _fast_config().to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestSingleCellParity:
    """The acceptance gate: a 1-AP, coupling-off deployment IS the
    existing single-cell machinery (same style as
    tests/mac/test_engine_batch_parity.py — exact equality, no tolerance).
    """

    @settings(max_examples=6, deadline=None)
    @given(
        protocol=st.sampled_from(["Carpool", "802.11", "A-MPDU"]),
        stations=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_degenerate_deployment_is_cbr_scenario(self, protocol, stations,
                                                   seed):
        import tempfile

        config = DeploymentConfig(
            n_aps=1, stas_per_ap=stations, duration=0.4, seed=seed,
            protocol=protocol, coupling=False,
        )
        with tempfile.TemporaryDirectory() as scratch:
            deployment = simulate_deployment(
                config, n_workers=1, use_cache=False,
                cache=ResultCache(directory=scratch, namespace="deployment"),
            )
        reference = CbrScenario(
            num_stations=stations,
            num_aps=1,
            duration=config.duration,
            seed=cell_seed(seed, 0),
            frame_bytes=config.frame_bytes,
            frames_per_second=config.frames_per_second,
            latency_requirement=config.latency_requirement,
            with_background=config.with_background,
            background_intensity=config.background_intensity,
        ).run(PROTOCOLS[protocol])

        (cell,) = deployment.cells
        assert cell.goodput_bps == reference.measured_ap_goodput_bps
        assert cell.useful_goodput_bps == reference.measured_ap_useful_goodput_bps
        assert cell.mean_delay_s == reference.downlink_mean_delay
        assert cell.p95_delay_s == reference.downlink_p95_delay
        assert cell.collisions == reference.collisions
        assert cell.transmissions == reference.transmissions
        assert cell.retransmitted_subframes == reference.retransmitted_subframes
        assert cell.dropped_frames == reference.dropped_frames
        assert cell.channel_busy_fraction == reference.channel_busy_fraction
        assert deployment.total_goodput_bps == reference.measured_ap_goodput_bps
        assert deployment.n_coupled_cells == 0

    def test_coupling_off_cells_are_independent_single_cell_runs(self):
        # Multi-AP generalisation: with coupling disabled, EVERY cell is
        # exactly the standalone scenario under its derived seed.
        config = _fast_config(coupling=False)
        specs, _timeline, plans = build_cell_specs(config)
        assert all(plan is None for plan in plans.values())
        for spec in specs:
            if spec.n_stations == 0:
                continue
            got = run_cell(spec)
            reference = CbrScenario(
                num_stations=spec.n_stations,
                num_aps=1,
                duration=spec.duration,
                seed=cell_seed(config.seed, spec.ap_index),
                frame_bytes=spec.frame_bytes,
                frames_per_second=spec.frames_per_second,
                latency_requirement=spec.latency_requirement,
                with_background=spec.with_background,
                background_intensity=spec.background_intensity,
            ).run(PROTOCOLS[config.protocol])
            assert got.goodput_bps == reference.measured_ap_goodput_bps
            assert got.collisions == reference.collisions
            assert got.channel_busy_fraction == reference.channel_busy_fraction


class TestDeterminism:
    def test_worker_count_invariance(self, cache):
        config = _fast_config()
        serial = simulate_deployment(config, n_workers=1, use_cache=False,
                                     cache=cache)
        parallel = simulate_deployment(config, n_workers=3, use_cache=False,
                                       cache=cache)
        assert serial.to_dict() == parallel.to_dict()

    def test_same_seed_same_result(self, cache):
        config = _fast_config()
        a = simulate_deployment(config, n_workers=1, use_cache=False, cache=cache)
        b = simulate_deployment(config, n_workers=1, use_cache=False, cache=cache)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self, cache):
        a = simulate_deployment(_fast_config(seed=1), n_workers=1,
                                use_cache=False, cache=cache)
        b = simulate_deployment(_fast_config(seed=2), n_workers=1,
                                use_cache=False, cache=cache)
        assert a.to_dict() != b.to_dict()

    def test_mobility_worker_count_invariance(self, cache):
        config = _fast_config(mobility=True, duration=0.6)
        serial = simulate_deployment(config, n_workers=1, use_cache=False,
                                     cache=cache)
        parallel = simulate_deployment(config, n_workers=2, use_cache=False,
                                       cache=cache)
        assert serial.to_dict() == parallel.to_dict()


class TestCache:
    def test_replay_hits_cache_and_matches(self, cache):
        config = _fast_config()
        cold = simulate_deployment(config, n_workers=1, cache=cache)
        warm = simulate_deployment(config, n_workers=1, cache=cache)
        assert cache.hits >= 1
        assert cold.to_dict() == warm.to_dict()

    def test_result_round_trips_through_json(self, cache):
        import json

        config = _fast_config(mobility=True)
        result = simulate_deployment(config, n_workers=1, use_cache=False,
                                     cache=cache)
        rebuilt = DeploymentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_dict() == result.to_dict()
        assert isinstance(rebuilt.cells[0], CellResult)


class TestDeploymentBehaviour:
    def test_aggregates_are_consistent_with_cells(self, cache):
        result = simulate_deployment(_fast_config(), n_workers=1,
                                     use_cache=False, cache=cache)
        assert len(result.cells) == 4
        assert result.total_goodput_bps == pytest.approx(
            sum(c.goodput_bps for c in result.cells))
        assert result.busy_airtime_s == pytest.approx(
            sum(c.busy_airtime_s for c in result.cells))
        assert 0.0 < result.jain_fairness <= 1.0
        assert result.total_goodput_bps > 0.0

    def test_coupling_marks_cells_and_changes_outcomes(self, cache):
        coupled = simulate_deployment(_fast_config(coupling=True),
                                      n_workers=1, use_cache=False, cache=cache)
        isolated = simulate_deployment(_fast_config(coupling=False),
                                       n_workers=1, use_cache=False, cache=cache)
        assert coupled.n_coupled_cells > 0
        assert isolated.n_coupled_cells == 0
        assert sum(c.coupled for c in coupled.cells) == coupled.n_coupled_cells
        assert {c.coupled for c in isolated.cells} == {False}

    def test_empty_cells_report_zeroes(self, cache):
        result = simulate_deployment(
            _fast_config(stas_per_ap=0, with_background=False),
            n_workers=1, use_cache=False, cache=cache,
        )
        assert result.total_goodput_bps == 0.0
        assert all(c.n_stations == 0 for c in result.cells)

    def test_mobility_roams_and_still_delivers(self, cache):
        result = simulate_deployment(
            _fast_config(mobility=True, hysteresis_db=1.0, duration=1.0,
                         arena_width_m=25.0, arena_height_m=25.0),
            n_workers=1, use_cache=False, cache=cache,
        )
        assert result.total_goodput_bps > 0.0
        assert result.interruption_time_s >= 0.0
        assert result.n_roams >= 0

    def test_mixed_legacy_cells_use_mixed_protocol(self, cache):
        config = _fast_config(legacy_fraction=0.5, seed=9)
        specs, timeline, _plans = build_cell_specs(config)
        assert any(spec.carpool_stations is not None for spec in specs)
        carpool_total = sum(
            len(spec.carpool_stations or ()) for spec in specs
        )
        assert 0 < carpool_total < config.n_stas
        result = simulate_deployment(config, n_workers=1, use_cache=False,
                                     cache=cache)
        assert result.total_goodput_bps > 0.0

    def test_protocols_share_one_deployment_layout(self, cache):
        # Same seed, different protocol: the topology, membership, and
        # coupling plans are identical — only the MAC behaviour differs.
        a_specs, _, a_plans = build_cell_specs(_fast_config(protocol="802.11"))
        b_specs, _, b_plans = build_cell_specs(_fast_config(protocol="Carpool"))
        assert [s.n_stations for s in a_specs] == [s.n_stations for s in b_specs]
        assert [s.seed for s in a_specs] == [s.seed for s in b_specs]
        assert a_plans == b_plans


_WIRE_FLOAT = st.floats(min_value=0.0, max_value=1e9,
                        allow_nan=False, allow_infinity=False)
_WIRE_COUNT = st.integers(0, 10_000)

#: A synthetic per-cell wire dict covering every key `observe_cell` reads.
_CELL_WIRE = st.fixed_dictionaries({
    "goodput_bps": _WIRE_FLOAT,
    "useful_goodput_bps": _WIRE_FLOAT,
    "busy_airtime_s": st.floats(0.0, 100.0, allow_nan=False),
    "channel_busy_fraction": st.floats(0.0, 1.0, allow_nan=False),
    "collisions": _WIRE_COUNT,
    "transmissions": _WIRE_COUNT,
    "retransmitted_subframes": _WIRE_COUNT,
    "dropped_frames": _WIRE_COUNT,
    "coupled": st.booleans(),
    "delivered_bytes_by_sta": st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        st.integers(0, 10**9), max_size=4,
    ),
})


@st.composite
def _sharding_plan(draw):
    cells = draw(st.lists(_CELL_WIRE, min_size=1, max_size=10))
    order = draw(st.permutations(range(len(cells))))
    n_shards = draw(st.integers(1, len(cells)))
    track = draw(st.booleans())
    return cells, order, n_shards, track


def _finalized(agg):
    """Every externally visible number the aggregate finalises to."""
    return {
        "n_cells": agg.n_cells,
        "n_coupled_cells": agg.n_coupled_cells,
        "collisions": agg.collisions,
        "transmissions": agg.transmissions,
        "retransmitted_subframes": agg.retransmitted_subframes,
        "dropped_frames": agg.dropped_frames,
        "total_goodput_bps": agg.total_goodput_bps(),
        "total_useful_goodput_bps": agg.total_useful_goodput_bps(),
        "busy_airtime_s": agg.busy_airtime_s(),
        "jain_fairness": agg.jain_fairness(),
        "mean_cell_goodput": agg.cell_goodput.mean(),
        "stddev_cell_goodput": agg.cell_goodput.stddev(),
        "mean_busy_fraction": agg.busy_fraction.mean(),
        "goodput_hist": agg.goodput_hist.to_dict(),
        "busy_hist": agg.busy_hist.to_dict(),
    }


class TestAggregateAssociativity:
    """The streaming guarantee, stated directly on the accumulator: any
    partition of the cells into shards, folded in any order and merged in
    any grouping, finalises bit-identically to one sequential fold.
    """

    @settings(max_examples=40, deadline=None)
    @given(plan=_sharding_plan())
    def test_any_partition_and_order_matches_single_shot(self, plan):
        cells, order, n_shards, track = plan

        single = DeploymentAggregate(track_stations=track)
        for cell in cells:
            single.observe_cell(cell)

        # Fold a *permutation* of the cells, split into contiguous shards,
        # then merge the shard accumulators left to right.
        permuted = [cells[i] for i in order]
        size = -(-len(permuted) // n_shards)
        shards = []
        for start in range(0, len(permuted), size):
            shard = DeploymentAggregate(track_stations=track)
            for cell in permuted[start:start + size]:
                shard.observe_cell(cell)
            shards.append(shard)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)

        assert _finalized(merged) == _finalized(single)

    @settings(max_examples=15, deadline=None)
    @given(cells=st.lists(_CELL_WIRE, min_size=1, max_size=6),
           track=st.booleans())
    def test_pickle_round_trip_preserves_everything(self, cells, track):
        # The accumulator is the sharded path's IPC payload; the trip
        # through the pipe must be lossless.
        import pickle

        agg = DeploymentAggregate(track_stations=track)
        for cell in cells:
            agg.observe_cell(cell)
        rebuilt = pickle.loads(pickle.dumps(agg))
        assert _finalized(rebuilt) == _finalized(agg)
        assert rebuilt.track_stations == agg.track_stations

    def test_refuses_to_merge_mismatched_modes(self):
        with pytest.raises(ValueError):
            DeploymentAggregate(track_stations=True).merge(
                DeploymentAggregate(track_stations=False))

    def test_empty_aggregate_finalises_to_neutral_values(self):
        agg = DeploymentAggregate()
        assert agg.n_cells == 0
        assert agg.total_goodput_bps() == 0.0
        assert agg.jain_fairness() == 1.0
        assert agg.goodput_hist.total == 0


class TestShardedDeployment:
    def test_rejects_bad_shards(self, cache):
        with pytest.raises(ValueError):
            simulate_deployment(_fast_config(), n_workers=1, use_cache=False,
                                cache=cache, shards=0)

    def test_sharded_matches_unsharded_aggregates(self, cache):
        config = _fast_config()
        full = simulate_deployment(config, n_workers=1, use_cache=False,
                                   cache=cache)
        sharded = simulate_deployment(config, n_workers=2, use_cache=False,
                                      cache=cache, shards=2)
        assert sharded.cells == []
        assert sharded.n_cells == config.n_aps
        assert dict(sharded.to_dict(), cells=None) == \
            dict(full.to_dict(), cells=None)

    def test_sharded_and_unsharded_cache_separately(self, cache):
        # A sharded result has no per-cell breakdown; it must never
        # satisfy (or be satisfied by) the unsharded cache entry.
        config = _fast_config()
        full = simulate_deployment(config, n_workers=1, cache=cache)
        assert full.cells != []
        sharded = simulate_deployment(config, n_workers=1, cache=cache,
                                      shards=2)
        assert cache.hits == 0
        assert sharded.cells == []
        warm = simulate_deployment(config, n_workers=1, cache=cache, shards=2)
        assert cache.hits == 1
        assert warm.to_dict() == sharded.to_dict()

    def test_sharded_result_round_trips_through_json(self, cache):
        import json

        result = simulate_deployment(_fast_config(mobility=True), n_workers=1,
                                     use_cache=False, cache=cache, shards=3)
        rebuilt = DeploymentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.cells == []

    def test_aggregate_fields_consistent_with_cells(self, cache):
        # The new deployment-level statistics must agree with the
        # retained per-cell breakdown on the unsharded path.
        result = simulate_deployment(_fast_config(), n_workers=1,
                                     use_cache=False, cache=cache)
        goodputs = [c.goodput_bps for c in result.cells]
        assert result.n_cells == len(result.cells)
        assert result.mean_cell_goodput_bps == pytest.approx(
            sum(goodputs) / len(goodputs))
        assert result.mean_cell_busy_fraction == pytest.approx(
            sum(c.channel_busy_fraction for c in result.cells)
            / len(result.cells))
        assert sum(result.goodput_histogram["counts"]) == result.n_cells
        assert sum(result.busy_fraction_histogram["counts"]) == result.n_cells


@pytest.mark.slow
def test_large_grid_deployment(tmp_path):
    """A 9-AP hotspot floor: parallel fan-out, coupling, full aggregation."""
    config = DeploymentConfig(
        n_aps=9, stas_per_ap=4, duration=1.0, seed=7, channels=1,
        protocol="Carpool",
    )
    cache = ResultCache(directory=str(tmp_path), namespace="deployment")
    serial = simulate_deployment(config, n_workers=1, use_cache=False,
                                 cache=cache)
    parallel = simulate_deployment(config, n_workers=4, use_cache=False,
                                   cache=cache)
    assert serial.to_dict() == parallel.to_dict()
    assert len(serial.cells) == 9
    assert serial.n_coupled_cells > 0
    assert serial.total_goodput_bps > 0.0
