"""Deployment geometry: placement, channels, link budget, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    Arena,
    DeploymentTopology,
    build_topology,
    place_aps_grid,
    place_aps_poisson,
    place_stas_clustered,
    place_stas_hotspot,
    place_stas_uniform,
)
from repro.util.rng import RngStream


class TestArena:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Arena(0.0, 10.0)
        with pytest.raises(ValueError):
            Arena(10.0, -1.0)

    def test_clamp_keeps_points_inside(self):
        arena = Arena(10.0, 20.0)
        x, y = arena.clamp(-5.0, 100.0)
        assert 0.0 < x < 10.0 and 0.0 < y < 20.0


class TestPlacement:
    def test_grid_counts_and_coverage(self):
        arena = Arena(60.0, 60.0)
        aps = place_aps_grid(9, arena)
        assert len(aps) == 9
        assert [a.index for a in aps] == list(range(9))
        for ap in aps:
            assert 0.0 < ap.x < 60.0 and 0.0 < ap.y < 60.0
        # A 3x3 grid has three distinct column and row coordinates.
        assert len({round(a.x, 6) for a in aps}) == 3
        assert len({round(a.y, 6) for a in aps}) == 3

    def test_grid_channels_round_robin(self):
        aps = place_aps_grid(6, Arena(), channels=3)
        assert [a.channel for a in aps] == [0, 1, 2, 0, 1, 2]
        assert all(a.channel == 0 for a in place_aps_grid(4, Arena(), channels=1))

    def test_poisson_deterministic_per_seed(self):
        arena = Arena()
        a = place_aps_poisson(5, arena, RngStream(3).child("net-aps"))
        b = place_aps_poisson(5, arena, RngStream(3).child("net-aps"))
        c = place_aps_poisson(5, arena, RngStream(4).child("net-aps"))
        assert [(s.x, s.y) for s in a] == [(s.x, s.y) for s in b]
        assert [(s.x, s.y) for s in a] != [(s.x, s.y) for s in c]

    @pytest.mark.parametrize("placement", ["uniform", "clustered", "hotspot"])
    def test_sta_placements_inside_arena(self, placement):
        arena = Arena(30.0, 40.0)
        rng = RngStream(9).child("net-stas")
        if placement == "uniform":
            stas = place_stas_uniform(20, arena, rng)
        elif placement == "clustered":
            stas = place_stas_clustered(20, place_aps_grid(4, arena), arena, rng)
        else:
            stas = place_stas_hotspot(20, arena, rng)
        assert len(stas) == 20
        assert [s.index for s in stas] == list(range(20))
        for sta in stas:
            assert 0.0 <= sta.x <= 30.0 and 0.0 <= sta.y <= 40.0

    def test_sta_names_are_global_indices(self):
        stas = place_stas_uniform(3, Arena(), RngStream(0).child("s"))
        assert [s.name for s in stas] == ["sta0", "sta1", "sta2"]

    def test_clustered_requires_aps(self):
        with pytest.raises(ValueError):
            place_stas_clustered(4, [], Arena(), RngStream(0).child("s"))


class TestTopology:
    def _topo(self, seed=7, n_aps=4, n_stas=8, **kwargs):
        return build_topology(n_aps, n_stas, seed, **kwargs)

    def test_same_seed_same_topology(self):
        a, b = self._topo(), self._topo()
        assert np.array_equal(a.snr_matrix(), b.snr_matrix())

    def test_adding_stas_does_not_move_aps(self):
        small = build_topology(4, 4, 11, ap_placement="poisson")
        large = build_topology(4, 16, 11, ap_placement="poisson")
        assert [(a.x, a.y) for a in small.aps] == [(a.x, a.y) for a in large.aps]

    def test_shadowing_is_frozen_per_link(self):
        topo = self._topo()
        assert topo.snr_db(0, 0) == topo.snr_db(0, 0)
        # Moving the station changes path loss but keeps the same
        # shadowing term: the SNR delta equals the path-loss delta.
        base = topo.snr_db(0, 0)
        moved = topo.snr_db(0, 0, sta_xy=(topo.aps[0].x, topo.aps[0].y))
        assert moved > base  # at the AP the link can only improve

    def test_zero_shadowing_matches_pure_path_loss(self):
        topo = build_topology(2, 2, 5, shadowing_sigma_db=0.0)
        from repro.channel.path_loss import link_snr_db
        from repro.net.topology import NOISE_FLOOR_DBM, TX_POWER_DBM

        expected = link_snr_db(topo.distance(0, 0), TX_POWER_DBM,
                               NOISE_FLOOR_DBM, topo.path_loss)
        assert topo.snr_db(0, 0) == pytest.approx(expected)

    def test_strongest_ap_matches_argmax(self):
        topo = self._topo(n_aps=5, n_stas=6)
        matrix = topo.snr_matrix()
        for sta in range(6):
            assert topo.strongest_ap(sta) == int(np.argmax(matrix[:, sta]))

    def test_co_channel_pairs_single_channel(self):
        topo = self._topo(n_aps=4, channels=1)
        assert len(topo.co_channel_pairs()) == 6  # all 4C2 pairs

    def test_co_channel_pairs_disjoint_channels(self):
        topo = self._topo(n_aps=3, channels=3)
        assert topo.co_channel_pairs() == []

    def test_unknown_placements_rejected(self):
        with pytest.raises(ValueError):
            build_topology(2, 2, 0, ap_placement="ring")
        with pytest.raises(ValueError):
            build_topology(2, 2, 0, sta_placement="line")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           n_aps=st.integers(1, 6), n_stas=st.integers(1, 10))
    def test_snr_matrix_shape_and_determinism(self, seed, n_aps, n_stas):
        a = build_topology(n_aps, n_stas, seed)
        b = build_topology(n_aps, n_stas, seed)
        assert a.snr_matrix().shape == (n_aps, n_stas)
        assert np.array_equal(a.snr_matrix(), b.snr_matrix())
