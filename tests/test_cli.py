import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_phy_defaults(self):
        args = build_parser().parse_args(["phy"])
        assert args.mcs == "QAM64-3/4"
        assert args.trials == 30

    def test_mac_flags(self):
        args = build_parser().parse_args(
            ["mac", "--stations", "12", "--background", "--protocols", "Carpool"]
        )
        assert args.stations == 12
        assert args.background
        assert args.protocols == ["Carpool"]

    def test_phy_perf_flags(self):
        args = build_parser().parse_args(["phy", "--workers", "2", "--profile"])
        assert args.workers == 2
        assert args.profile
        assert build_parser().parse_args(["phy"]).workers is None

    def test_bench_flags(self):
        args = build_parser().parse_args(["bench", "--smoke", "--out", "b.json"])
        assert args.smoke
        assert args.out == "b.json"
        defaults = build_parser().parse_args(["bench"])
        assert defaults.out is None  # resolved per suite at run time
        assert defaults.suite == "phy"
        assert defaults.compare is None
        assert defaults.threshold == pytest.approx(0.2)

    def test_bench_compare_flags(self):
        args = build_parser().parse_args(
            ["bench", "--suite", "all", "--compare", ".", "--threshold", "0.3"]
        )
        assert args.suite == "all"
        assert args.compare == "."
        assert args.threshold == pytest.approx(0.3)

    def test_bench_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--suite", "dsp"])

    def test_soak_flags(self):
        args = build_parser().parse_args(
            ["soak", "--epochs", "5", "--checkpoint", "ckpt", "--resume",
             "--fault-profile", "mixed", "--shards", "2", "--users", "100"])
        assert args.epochs == 5
        assert args.checkpoint == "ckpt"
        assert args.resume
        assert args.fault_profile == "mixed"
        assert args.shards == 2
        assert args.users == 100
        defaults = build_parser().parse_args(["soak"])
        assert defaults.epochs is None
        assert defaults.duration is None
        assert not defaults.resume
        assert defaults.fault_profile == "none"

    def test_soak_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--fault-profile", "quakes"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "phy" in out and "mac" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "5.6" in out or "5.60" in out or "%" in out

    def test_testbed(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 30  # 30 locations listed
        assert "QAM" in out or "BPSK" in out or "QPSK" in out

    def test_phy_small(self, capsys):
        assert main(["phy", "--trials", "2", "--payload", "300"]) == 0
        out = capsys.readouterr().out
        assert "standard" in out and "RTE" in out

    def test_mac_small(self, capsys):
        code = main(["mac", "--stations", "4", "--duration", "1",
                     "--protocols", "Carpool", "802.11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Carpool" in out and "802.11" in out

    def test_mac_unknown_protocol(self, capsys):
        assert main(["mac", "--protocols", "Bogus"]) == 2

    def test_phy_profile(self, capsys):
        assert main(["phy", "--trials", "1", "--payload", "120",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: top 20 by cumulative time" in out
        assert "cumulative" in out  # the pstats column header

    def test_soak_run_and_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "soak")
        base = ["soak", "--checkpoint", ckpt, "--aps", "2",
                "--max-stas-per-ap", "4", "--target-active-stas", "2.0",
                "--epoch-duration", "0.25", "--seed", "11"]
        assert main(base + ["--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 epoch(s) this run" in out and "goodput" in out
        assert main(base + ["--epochs", "3", "--resume", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 epoch(s) this run" in out and "3 total" in out

    def test_soak_refuses_overwrite_without_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "soak")
        base = ["soak", "--checkpoint", ckpt, "--aps", "2",
                "--max-stas-per-ap", "4", "--target-active-stas", "2.0",
                "--epoch-duration", "0.25", "--epochs", "1"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 2
        assert "resume" in capsys.readouterr().err

    def test_soak_resume_without_checkpoint_fails(self, capsys, tmp_path):
        code = main(["soak", "--checkpoint", str(tmp_path / "ghost"),
                     "--epochs", "1", "--resume"])
        assert code == 2
        assert "no checkpoint" in capsys.readouterr().err

    @pytest.mark.slow
    def test_bench_smoke(self, capsys, tmp_path, monkeypatch):
        out_path = tmp_path / "BENCH_phy.json"
        assert main(["bench", "--smoke", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "viterbi" in out and "monte carlo" in out
        assert out_path.exists()

    @pytest.mark.slow
    def test_bench_out_requires_single_suite(self, tmp_path, capsys):
        code = main(["bench", "--suite", "all", "--smoke",
                     "--out", str(tmp_path / "b.json")])
        assert code == 2

    @pytest.mark.slow
    def test_bench_smoke_never_touches_committed_baselines(
            self, capsys, tmp_path, monkeypatch):
        # Smoke runs default to a temp dir: BENCH_mac.json in the cwd
        # (the committed baseline) must survive untouched.
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--suite", "mac", "--smoke"]) == 0
        assert not (tmp_path / "BENCH_mac.json").exists()
        out = capsys.readouterr().out
        assert "wrote " in out

    @pytest.mark.slow
    def test_bench_compare_exit_codes(self, capsys, tmp_path, monkeypatch):
        import copy
        import json

        out_path = tmp_path / "BENCH_mac.json"
        assert main(["bench", "--suite", "mac", "--smoke",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())

        def scaled(factor):
            # Scale only the gated throughput keys: workload descriptors
            # must stay identical or the sections are incomparable.
            markers = ("_per_s", "speedup", "frames_per_s", "mbit_per_s")
            doc = copy.deepcopy(payload)
            for name, body in doc.items():
                if name == "meta":
                    continue
                for key, value in body.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    if any(marker in key for marker in markers):
                        body[key] = value * factor
            return doc

        easy = tmp_path / "easy" / "BENCH_mac.json"
        easy.parent.mkdir()
        easy.write_text(json.dumps(scaled(1e-6)))
        hard = tmp_path / "hard" / "BENCH_mac.json"
        hard.parent.mkdir()
        hard.write_text(json.dumps(scaled(1e6)))

        run = tmp_path / "run.json"
        assert main(["bench", "--suite", "mac", "--smoke",
                     "--out", str(run), "--compare", str(easy.parent)]) == 0
        assert "no regression" in capsys.readouterr().out
        assert main(["bench", "--suite", "mac", "--smoke",
                     "--out", str(run), "--compare", str(hard.parent)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    @pytest.mark.slow
    def test_bench_compare_missing_baseline_is_skipped(self, capsys, tmp_path):
        run = tmp_path / "run.json"
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["bench", "--suite", "mac", "--smoke",
                     "--out", str(run), "--compare", str(empty)]) == 0
        assert "skipping compare" in capsys.readouterr().out


class TestObsFlags:
    def test_trace_and_metrics_flags(self):
        args = build_parser().parse_args(
            ["phy", "--trace", "t.jsonl", "--trace-sample", "4", "--metrics"]
        )
        assert args.trace == "t.jsonl"
        assert args.trace_sample == 4
        assert args.metrics
        defaults = build_parser().parse_args(["phy"])
        assert defaults.trace is None and not defaults.metrics

    def test_log_level_is_global(self):
        args = build_parser().parse_args(["--log-level", "debug", "mac"])
        assert args.log_level == "debug"
        assert build_parser().parse_args(["mac"]).log_level is None

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["report", "t.jsonl", "--top", "5", "--timeline", "10"]
        )
        assert args.path == "t.jsonl"
        assert args.top == 5
        assert args.timeline == 10

    def test_trace_sample_rejects_nonpositive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["phy", "--trace-sample", "0"])


class TestObsCommands:
    def test_traced_run_then_report(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        code = main(["phy", "--trials", "2", "--payload", "300",
                     "--trace", str(trace), "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace: {trace}" in out
        assert "--- metrics: counters ---" in out
        assert trace.exists()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events, "traced run produced no events"
        assert events[-1]["layer"] == "obs" and events[-1]["event"] == "metrics"
        manifest = json.loads((tmp_path / "run.jsonl.manifest.json").read_text())
        assert manifest["kind"] == "phy"
        assert manifest["n_events"] == len(events)

        code = main(["report", str(trace)])
        assert code == 0
        report = capsys.readouterr().out
        assert "Event counts by layer" in report
        assert "Top timers" in report

    def test_report_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_report_malformed_trace_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["report", str(bad)]) == 2
        assert "malformed trace" in capsys.readouterr().err

    def test_report_does_not_truncate_its_input(self, capsys, tmp_path):
        # Regression: `report` must never be treated as a traced run and
        # truncate the very file it is asked to render.
        trace = tmp_path / "run.jsonl"
        trace.write_text('{"seq": 0, "layer": "mac", "event": "transmit"}\n')
        assert main(["report", str(trace)]) == 0
        assert trace.read_text().strip() != ""
        assert "1 events" in capsys.readouterr().out

    def _soak_dir(self, tmp_path, **overrides):
        from repro.serve.service import SoakConfig, run_soak
        from repro.serve.workload import SoakWorkload

        workload = SoakWorkload(seed=11, n_aps=2, max_stas_per_ap=4,
                                target_active_stas=2.0, epoch_duration=0.25,
                                channels=1)
        base = dict(workload=workload, fault_profile="none",
                    checkpoint_dir=str(tmp_path / "soak"), n_workers=1,
                    epochs=2, telemetry=True, slos=("goodput_bps<1",))
        base.update(overrides)
        run_soak(SoakConfig(**base))
        return str(tmp_path / "soak")

    def test_status_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["status", str(tmp_path / "absent")]) == 2
        assert "no checkpoint directory" in capsys.readouterr().err

    def test_status_empty_dir_exits_2(self, capsys, tmp_path):
        (tmp_path / "empty").mkdir()
        assert main(["status", str(tmp_path / "empty")]) == 2
        assert "no soak artifacts" in capsys.readouterr().err

    def test_status_healthy_run_exits_0(self, capsys, tmp_path):
        directory = self._soak_dir(tmp_path)
        assert main(["status", directory]) == 0
        out = capsys.readouterr().out
        assert "health: ok" in out
        assert "slo: goodput_bps<1" in out
        assert "Last 2 epoch(s)" in out

    def test_status_breached_run_exits_1(self, capsys, tmp_path):
        directory = self._soak_dir(tmp_path,
                                   slos=("goodput_bps>0!drain",))
        assert main(["status", directory]) == 1
        assert "BREACH goodput_bps>0!drain" in capsys.readouterr().out

    def test_report_on_soak_directory_renders_status(self, capsys, tmp_path):
        directory = self._soak_dir(tmp_path)
        assert main(["report", directory]) == 0
        assert "Soak status" in capsys.readouterr().out

    def test_status_tolerates_truncated_tail(self, capsys, tmp_path):
        # A hard kill mid-append leaves one truncated JSON line at the
        # telemetry tail; status/report must render what precedes it.
        directory = self._soak_dir(tmp_path)
        from repro.obs.telemetry import telemetry_paths

        with open(telemetry_paths(directory)["telemetry"], "a") as handle:
            handle.write('{"schema_version": 1, "epoch": 2, "de')
        assert main(["status", directory]) == 0
        assert "Last 2 epoch(s)" in capsys.readouterr().out

    def test_status_garbage_telemetry_exits_2(self, capsys, tmp_path):
        directory = self._soak_dir(tmp_path)
        from repro.obs.telemetry import telemetry_paths

        with open(telemetry_paths(directory)["telemetry"], "a") as handle:
            handle.write("not json\n")
        assert main(["status", directory]) == 2
        assert "malformed telemetry" in capsys.readouterr().err
        # report distinguishes the same two outcomes on directories.
        assert main(["report", directory]) == 2

    def test_log_level_attaches_handler(self, capsys):
        import logging

        from repro.obs.log import REPRO_LOGGER

        try:
            assert main(["--log-level", "warning", "list"]) == 0
            handlers = [h for h in REPRO_LOGGER.handlers
                        if getattr(h, "_repro_cli_handler", False)]
            assert len(handlers) == 1
            assert REPRO_LOGGER.level == logging.WARNING
        finally:
            for handler in list(REPRO_LOGGER.handlers):
                if getattr(handler, "_repro_cli_handler", False):
                    REPRO_LOGGER.removeHandler(handler)
            REPRO_LOGGER.setLevel(logging.NOTSET)
