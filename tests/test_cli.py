import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_phy_defaults(self):
        args = build_parser().parse_args(["phy"])
        assert args.mcs == "QAM64-3/4"
        assert args.trials == 30

    def test_mac_flags(self):
        args = build_parser().parse_args(
            ["mac", "--stations", "12", "--background", "--protocols", "Carpool"]
        )
        assert args.stations == 12
        assert args.background
        assert args.protocols == ["Carpool"]

    def test_phy_perf_flags(self):
        args = build_parser().parse_args(["phy", "--workers", "2", "--profile"])
        assert args.workers == 2
        assert args.profile
        assert build_parser().parse_args(["phy"]).workers is None

    def test_bench_flags(self):
        args = build_parser().parse_args(["bench", "--smoke", "--out", "b.json"])
        assert args.smoke
        assert args.out == "b.json"
        assert build_parser().parse_args(["bench"]).out == "BENCH_phy.json"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "phy" in out and "mac" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "5.6" in out or "5.60" in out or "%" in out

    def test_testbed(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") > 30  # 30 locations listed
        assert "QAM" in out or "BPSK" in out or "QPSK" in out

    def test_phy_small(self, capsys):
        assert main(["phy", "--trials", "2", "--payload", "300"]) == 0
        out = capsys.readouterr().out
        assert "standard" in out and "RTE" in out

    def test_mac_small(self, capsys):
        code = main(["mac", "--stations", "4", "--duration", "1",
                     "--protocols", "Carpool", "802.11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Carpool" in out and "802.11" in out

    def test_mac_unknown_protocol(self, capsys):
        assert main(["mac", "--protocols", "Bogus"]) == 2

    def test_phy_profile(self, capsys):
        assert main(["phy", "--trials", "1", "--payload", "120",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: top 20 by cumulative time" in out
        assert "cumulative" in out  # the pstats column header

    @pytest.mark.slow
    def test_bench_smoke(self, capsys, tmp_path, monkeypatch):
        out_path = tmp_path / "BENCH_phy.json"
        assert main(["bench", "--smoke", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "viterbi" in out and "monte carlo" in out
        assert out_path.exists()
