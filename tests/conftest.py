"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.util.rng import RngStream


@pytest.fixture
def rng_stream():
    """A deterministic root RNG stream for tests."""
    return RngStream(seed=1234)


@pytest.fixture
def np_rng():
    """A plain numpy generator for payload/bit generation."""
    return np.random.default_rng(20150601)
