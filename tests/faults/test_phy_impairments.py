"""PHY impairment injectors and their channel-model integration."""

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.faults import FaultPlan, FaultSpec, build_impairment
from repro.util.rng import RngStream

N_SYMBOLS, N_SC = 20, 52


def _symbols(seed=0):
    gen = np.random.default_rng(seed)
    return (gen.normal(size=(N_SYMBOLS, N_SC))
            + 1j * gen.normal(size=(N_SYMBOLS, N_SC))) / np.sqrt(2.0)


def _apply(spec, symbols, seed=1):
    return build_impairment(spec).apply(symbols, RngStream(seed), 4e-6)


class TestInjectors:
    def test_build_rejects_mac_kinds(self):
        with pytest.raises(ValueError, match="not a PHY fault kind"):
            build_impairment(FaultSpec.make("ack_loss", probability=0.1))

    def test_residual_cfo_is_progressive_rotation(self):
        symbols = _symbols()
        out = _apply(FaultSpec.make("residual_cfo", magnitude=500.0), symbols)
        # Pure phase: magnitudes untouched, rotation grows with symbol index.
        np.testing.assert_allclose(np.abs(out), np.abs(symbols))
        phases = np.angle(out[:, 0] / symbols[:, 0])
        np.testing.assert_allclose(phases[1], phases[1] - phases[0], atol=1e-9)
        assert abs(phases[1]) > 0.0

    def test_timing_offset_slope_is_frequency_proportional(self):
        symbols = _symbols()
        out = _apply(FaultSpec.make("timing_offset", magnitude=2.0), symbols)
        np.testing.assert_allclose(np.abs(out), np.abs(symbols))
        # Same slope on every symbol, varying across subcarriers.
        rot = out / symbols
        np.testing.assert_allclose(rot[0], rot[-1])
        assert np.std(np.angle(rot[0])) > 0.1

    def test_deep_fade_attenuates_exact_span(self):
        symbols = _symbols()
        spec = FaultSpec.make("deep_fade", magnitude=20.0, length=3, position=5)
        out = _apply(spec, symbols)
        np.testing.assert_allclose(out[5:8], symbols[5:8] * 0.1)
        np.testing.assert_allclose(out[:5], symbols[:5])
        np.testing.assert_allclose(out[8:], symbols[8:])

    def test_deep_fade_probability_gate(self):
        symbols = _symbols()
        spec = FaultSpec.make("deep_fade", probability=1e-12, magnitude=20.0,
                              length=3, position=5)
        out = _apply(spec, symbols)
        np.testing.assert_array_equal(out, symbols)

    def test_impulse_noise_raises_power_only_in_bursts(self):
        symbols = _symbols()
        spec = FaultSpec.make("impulse_noise", probability=0.2,
                              magnitude=20.0, length=2)
        out = _apply(spec, symbols, seed=3)
        delta = np.abs(out - symbols).sum(axis=1)
        assert (delta > 0).any() and (delta == 0).any()
        hit_power = np.mean(np.abs(out[delta > 0]) ** 2)
        assert hit_power > 10.0  # 20 dB bursts dominate unit-power signal

    def test_ge_fade_attenuates_bad_state_runs(self):
        symbols = _symbols()
        spec = FaultSpec.make("ge_fade", magnitude=20.0,
                              p_good_to_bad=0.5, p_bad_to_good=0.2)
        out = _apply(spec, symbols, seed=5)
        ratio = np.abs(out[:, 0]) / np.abs(symbols[:, 0])
        assert set(np.round(ratio, 6)) <= {0.1, 1.0}
        assert (ratio < 1.0).any()

    def test_injectors_do_not_mutate_input(self):
        symbols = _symbols()
        original = symbols.copy()
        for spec in (FaultSpec.make("deep_fade", magnitude=10.0, position=0),
                     FaultSpec.make("impulse_noise", probability=1.0,
                                    magnitude=10.0),
                     FaultSpec.make("residual_cfo", magnitude=100.0)):
            _apply(spec, symbols)
            np.testing.assert_array_equal(symbols, original)


class TestChannelIntegration:
    def test_no_impairments_is_bit_identical(self):
        """The hook's existence must not perturb a clean channel."""
        symbols = _symbols()
        clean = ChannelModel(snr_db=20.0, rng=RngStream(4))
        hooked = ChannelModel(snr_db=20.0, rng=RngStream(4), impairments=())
        np.testing.assert_array_equal(clean.transmit(symbols),
                                      hooked.transmit(symbols))

    def test_impairments_change_output_deterministically(self):
        symbols = _symbols()
        plan = FaultPlan.of(FaultSpec.make("impulse_noise", probability=0.3,
                                           magnitude=15.0))
        outs = [
            ChannelModel(snr_db=20.0, rng=RngStream(4),
                         impairments=plan.phy_impairments()).transmit(symbols)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        clean = ChannelModel(snr_db=20.0, rng=RngStream(4)).transmit(symbols)
        assert not np.array_equal(outs[0], clean)
