"""Gilbert–Elliott chain and continuous burst timeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.gilbert_elliott import BurstTimeline, GilbertElliott
from repro.util.rng import RngStream


class TestGilbertElliott:
    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.0, p_bad_to_good=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=0.1, p_bad_to_good=0.5, loss_bad=1.5)

    def test_stationary_bad_probability_closed_form(self):
        chain = GilbertElliott(p_good_to_bad=0.05, p_bad_to_good=0.20)
        assert chain.stationary_bad_probability() == pytest.approx(0.05 / 0.25)
        assert chain.mean_burst_length() == pytest.approx(5.0)

    def test_states_cluster_into_bursts(self):
        """Mean observed burst length tracks 1/p_bad_to_good."""
        chain = GilbertElliott(p_good_to_bad=0.02, p_bad_to_good=0.10)
        states = chain.sample_states(200_000, np.random.default_rng(3))
        transitions = np.diff(states.astype(int))
        n_bursts = int((transitions == 1).sum())
        mean_len = states.sum() / max(n_bursts, 1)
        assert mean_len == pytest.approx(chain.mean_burst_length(), rel=0.15)

    @settings(max_examples=15, deadline=None)
    @given(
        p_gb=st.floats(0.01, 0.5),
        p_bg=st.floats(0.05, 1.0),
        loss_good=st.floats(0.0, 0.2),
        loss_bad=st.floats(0.5, 1.0),
        seed=st.integers(0, 2**31),
    )
    def test_empirical_loss_matches_closed_form(self, p_gb, p_bg, loss_good,
                                                loss_bad, seed):
        """Long-run loss rate converges to (1−π_B)·l_g + π_B·l_b."""
        chain = GilbertElliott(p_good_to_bad=p_gb, p_bad_to_good=p_bg,
                               loss_good=loss_good, loss_bad=loss_bad)
        losses = chain.sample_losses(60_000, np.random.default_rng(seed))
        expected = chain.stationary_loss_rate()
        # Burst correlation inflates the variance of the mean; bound the
        # tolerance by the mean burst length.
        sigma = np.sqrt(expected * (1 - expected) / losses.size)
        tolerance = 8.0 * sigma * np.sqrt(2.0 * chain.mean_burst_length()) + 5e-3
        assert abs(losses.mean() - expected) < tolerance

    def test_sampling_is_seed_deterministic(self):
        chain = GilbertElliott(p_good_to_bad=0.05, p_bad_to_good=0.25)
        a = chain.sample_losses(5_000, np.random.default_rng(7))
        b = chain.sample_losses(5_000, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestBurstTimeline:
    def test_lazy_extension_is_consistent(self):
        """Probing out of order never changes earlier segments."""
        timeline = BurstTimeline(0.05, 0.005, RngStream(11))
        late = timeline.bad_overlap(0.0, 2.0)
        early = timeline.bad_overlap(0.0, 0.5)
        again = timeline.bad_overlap(0.0, 2.0)
        assert late == pytest.approx(again)
        assert early <= late

    def test_overlap_fraction_tracks_duty_cycle(self):
        timeline = BurstTimeline(0.050, 0.010, RngStream(5))
        fraction = timeline.bad_overlap(0.0, 200.0) / 200.0
        assert fraction == pytest.approx(0.010 / 0.060, rel=0.25)

    def test_is_bad_agrees_with_overlap(self):
        timeline = BurstTimeline(0.02, 0.004, RngStream(9))
        for start in np.linspace(0.0, 1.0, 40):
            end = start + 0.003
            assert timeline.is_bad(start, end) == (
                timeline.bad_overlap(start, end) > 0.0)

    def test_invalid_sojourns_rejected(self):
        with pytest.raises(ValueError):
            BurstTimeline(0.0, 0.01, RngStream(0))
