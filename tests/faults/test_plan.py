"""FaultSpec/FaultPlan construction, validation and serialisation."""

import math
import pickle

import pytest

from repro.faults import MAC_FAULT_KINDS, PHY_FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_make_sorts_extra_params(self):
        spec = FaultSpec.make("ahdr_corruption", probability=0.2,
                              miss_probability=0.9, false_match_probability=0.1)
        assert spec.params == (("false_match_probability", 0.1),
                               ("miss_probability", 0.9))
        assert spec.param("miss_probability") == 0.9
        assert spec.param("absent", 42) == 42

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.make("cosmic_rays", probability=0.5)

    @pytest.mark.parametrize("bad", [
        dict(probability=1.5), dict(probability=-0.1),
        dict(start=2.0, stop=1.0), dict(length=0),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.make("ack_loss", **bad)

    def test_activation_window_half_open(self):
        spec = FaultSpec.make("ack_loss", probability=0.1, start=1.0, stop=2.0)
        assert not spec.active_at(0.999)
        assert spec.active_at(1.0)
        assert spec.active_at(1.999)
        assert not spec.active_at(2.0)

    def test_default_window_is_always_on(self):
        spec = FaultSpec.make("cts_loss", probability=0.1)
        assert spec.active_at(0.0) and spec.active_at(1e9)
        assert spec.stop == math.inf

    def test_stream_name_includes_salt(self):
        assert FaultSpec.make("ack_loss").stream_name == "fault-ack_loss"
        assert (FaultSpec.make("ack_loss", seed_salt="w3").stream_name
                == "fault-ack_loss-w3")

    def test_dict_roundtrip(self):
        spec = FaultSpec.make("deep_fade", probability=0.3, magnitude=18.0,
                              length=4, start=0.5, stop=2.5, seed_salt="x",
                              position=7)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_spec_is_hashable_and_picklable(self):
        spec = FaultSpec.make("impulse_noise", probability=0.05, magnitude=12.0)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.of()
        assert FaultPlan.of(FaultSpec.make("ack_loss", probability=0.1))

    def test_duplicate_streams_rejected(self):
        spec = FaultSpec.make("ack_loss", probability=0.1)
        with pytest.raises(ValueError, match="duplicate fault streams"):
            FaultPlan.of(spec, FaultSpec.make("ack_loss", probability=0.2))

    def test_salt_disambiguates_repeated_kinds(self):
        plan = FaultPlan.of(
            FaultSpec.make("ahdr_corruption", probability=1.0, seed_salt="w0"),
            FaultSpec.make("ahdr_corruption", probability=1.0, seed_salt="w1"),
        )
        assert len(plan.of_kind("ahdr_corruption")) == 2

    def test_layer_partition(self):
        plan = FaultPlan.of(
            FaultSpec.make("impulse_noise", probability=0.1, magnitude=10.0),
            FaultSpec.make("ack_loss", probability=0.1),
        )
        assert [s.kind for s in plan.phy_specs] == ["impulse_noise"]
        assert [s.kind for s in plan.mac_specs] == ["ack_loss"]
        assert set(PHY_FAULT_KINDS).isdisjoint(MAC_FAULT_KINDS)

    def test_phy_impairments_instantiated_per_spec(self):
        plan = FaultPlan.of(
            FaultSpec.make("residual_cfo", magnitude=200.0),
            FaultSpec.make("ge_fade", magnitude=15.0),
        )
        impairments = plan.phy_impairments()
        assert [i.spec.kind for i in impairments] == ["residual_cfo", "ge_fade"]

    def test_dict_roundtrip(self):
        plan = FaultPlan.of(
            FaultSpec.make("ack_loss", probability=0.25),
            FaultSpec.make("mac_burst", probability=1.0,
                           mean_good=0.03, mean_bad=0.004),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
