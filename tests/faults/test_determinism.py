"""Reproducibility guarantees of the fault framework.

Two invariants the whole robustness story rests on:

* a plan whose faults cannot fire leaves the simulation bit-identical to
  ``faults=None`` (dedicated child streams, zero extra draws);
* replaying any plan under the same seed reproduces the exact
  :class:`MetricsSummary`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec
from repro.mac import PROTOCOLS
from repro.mac.scenarios import VoipScenario


def _run(seed, plan=None, protocol="Carpool", recovery=False):
    scenario = VoipScenario(num_stations=4, num_aps=1, duration=0.6,
                            seed=seed, include_uplink=False,
                            fault_plan=plan,
                            sequential_ack_recovery=recovery)
    return scenario.run(PROTOCOLS[protocol])


class TestBaselineUntouched:
    def test_zero_probability_plan_is_bit_identical_to_no_plan(self):
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=0.0),
                            FaultSpec.make("cts_loss", probability=0.0))
        assert _run(3, plan) == _run(3, None)

    def test_elapsed_window_is_bit_identical_to_no_plan(self):
        """A fault whose window closed before t=0 must never draw."""
        plan = FaultPlan.of(FaultSpec.make("ahdr_corruption", probability=1.0,
                                           start=100.0, stop=200.0))
        assert _run(5, plan) == _run(5, None)

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        assert _run(7, FaultPlan.of()) == _run(7, None)


class TestReplay:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31),
           ack_loss=st.sampled_from([0.0, 0.1, 0.3]),
           protocol=st.sampled_from(["Carpool", "802.11", "Carpool-fallback"]))
    def test_same_seed_same_plan_same_summary(self, seed, ack_loss, protocol):
        plan = FaultPlan.of(
            FaultSpec.make("ack_loss", probability=ack_loss),
            FaultSpec.make("mac_burst", probability=1.0,
                           mean_good=0.05, mean_bad=0.005),
        )
        hardened = protocol == "Carpool-fallback"
        first = _run(seed, plan, protocol, recovery=hardened)
        second = _run(seed, plan, protocol, recovery=hardened)
        assert first == second

    def test_plan_roundtrip_through_dict_replays_identically(self):
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=0.2),
                            FaultSpec.make("ahdr_corruption", probability=0.3,
                                           miss_probability=0.8))
        clone = FaultPlan.from_dict(plan.to_dict())
        assert _run(11, plan) == _run(11, clone)
