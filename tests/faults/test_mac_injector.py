"""MacFaultInjector: windows, probabilities, counters, stream hygiene."""

import pytest

from repro.faults import FaultPlan, FaultSpec, MacFaultInjector
from repro.util.rng import RngStream


def _injector(*specs, seed=0):
    return MacFaultInjector(FaultPlan.of(*specs), RngStream(seed))


class TestActivation:
    def test_inactive_outside_window(self):
        inj = _injector(FaultSpec.make("ack_loss", probability=1.0,
                                       start=1.0, stop=2.0))
        assert not inj.ack_lost(0.5)
        assert inj.ack_lost(1.5)
        assert not inj.ack_lost(2.5)
        assert inj.ack_losses == 1

    def test_zero_probability_never_fires_and_never_draws(self):
        inj = _injector(FaultSpec.make("ack_loss", probability=0.0))
        assert not any(inj.ack_lost(t * 0.1) for t in range(50))
        assert inj._streams == {}  # no child stream ever spawned

    def test_certain_faults_always_fire(self):
        inj = _injector(FaultSpec.make("cts_loss", probability=1.0),
                        FaultSpec.make("hidden_window", probability=1.0))
        assert inj.cts_lost(0.1) and inj.hidden_window_hit(0.1)
        assert inj.counters()["cts_losses"] == 1
        assert inj.counters()["hidden_hits"] == 1

    def test_empirical_rate_tracks_probability(self):
        inj = _injector(FaultSpec.make("ack_loss", probability=0.3))
        losses = sum(inj.ack_lost(i * 1e-3) for i in range(4000))
        assert losses / 4000 == pytest.approx(0.3, abs=0.03)
        assert inj.ack_losses == losses


class TestAhdrCorruption:
    def test_corruption_returns_spec_then_per_sta_outcomes(self):
        spec = FaultSpec.make("ahdr_corruption", probability=1.0,
                              miss_probability=1.0,
                              false_match_probability=0.0)
        inj = _injector(spec)
        hit = inj.ahdr_corrupted(0.0)
        assert hit == spec
        assert inj.ahdr_subframe_missed(hit)
        assert not inj.ahdr_false_match(hit)
        assert inj.ahdr_corruptions == 1

    def test_partial_miss_probability(self):
        spec = FaultSpec.make("ahdr_corruption", probability=1.0,
                              miss_probability=0.5)
        inj = _injector(spec, seed=2)
        misses = sum(inj.ahdr_subframe_missed(spec) for _ in range(2000))
        assert misses / 2000 == pytest.approx(0.5, abs=0.05)

    def test_windowed_outages_with_distinct_salts(self):
        """Two outage windows coexist; each fires only inside its span."""
        inj = _injector(
            FaultSpec.make("ahdr_corruption", probability=1.0,
                           start=0.1, stop=0.2, seed_salt="w0"),
            FaultSpec.make("ahdr_corruption", probability=1.0,
                           start=0.5, stop=0.6, seed_salt="w1"),
        )
        assert inj.ahdr_corrupted(0.15) is not None
        assert inj.ahdr_corrupted(0.35) is None
        assert inj.ahdr_corrupted(0.55) is not None


class TestBurstChannel:
    def test_burst_failures_cluster_in_time(self):
        inj = _injector(FaultSpec.make("mac_burst", probability=1.0,
                                       mean_good=0.050, mean_bad=0.010))
        outcomes = [inj.subframe_burst_failed(t, t + 1e-3)
                    for t in [i * 1e-3 for i in range(3000)]]
        rate = sum(outcomes) / len(outcomes)
        # Duty cycle ≈ mean_bad / (mean_good + mean_bad), loosely.
        assert 0.05 < rate < 0.40
        assert inj.burst_failures == sum(outcomes)

    def test_timeline_realisation_is_stable(self):
        """Repeated queries over the same interval see the same realisation."""
        inj = _injector(FaultSpec.make("mac_burst", probability=1.0,
                                       mean_good=0.02, mean_bad=0.01))
        inj.subframe_burst_failed(0.0, 1e-3)  # materialise the timeline
        timeline = inj._timelines["fault-mac_burst"]
        probes = [(t * 1e-2, t * 1e-2 + 1e-3) for t in range(50)]
        first = [timeline.is_bad(a, b) for a, b in probes]
        second = [timeline.is_bad(a, b) for a, b in probes]
        assert first == second and any(first)


class TestStreamHygiene:
    def test_each_kind_owns_a_dedicated_stream(self):
        inj = _injector(FaultSpec.make("ack_loss", probability=0.5),
                        FaultSpec.make("cts_loss", probability=0.5))
        for _ in range(10):
            inj.ack_lost(0.0)
            inj.cts_lost(0.0)
        assert set(inj._streams) == {"fault-ack_loss", "fault-cts_loss"}

    def test_ack_draws_do_not_shift_cts_stream(self):
        """Interleaving one fault's draws must not change another's."""
        plan = (FaultSpec.make("ack_loss", probability=0.5),
                FaultSpec.make("cts_loss", probability=0.5))
        solo = _injector(*plan, seed=9)
        solo_cts = [solo.cts_lost(0.0) for _ in range(40)]
        mixed = _injector(*plan, seed=9)
        mixed_cts = []
        for i in range(40):
            mixed.ack_lost(0.0)  # extra draws on the *other* stream
            mixed_cts.append(mixed.cts_lost(0.0))
        assert solo_cts == mixed_cts
