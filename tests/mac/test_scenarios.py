import pytest

from repro.mac import AmpduProtocol, CarpoolProtocol, Dot11Protocol
from repro.mac.scenarios import CbrScenario, ScenarioResult, VoipScenario


class TestVoipScenario:
    def test_arrivals_cover_both_aps(self):
        scenario = VoipScenario(num_stations=4, num_aps=2, duration=2.0)
        arrivals, stations = scenario.build_arrivals()
        assert len(stations) == 8
        sources = {a.source for a in arrivals}
        assert "ap" in sources and "ap1" in sources

    def test_single_ap_option(self):
        scenario = VoipScenario(num_stations=3, num_aps=1, duration=2.0)
        arrivals, stations = scenario.build_arrivals()
        assert len(stations) == 3
        assert all(not a.source.startswith("ap1") for a in arrivals)

    def test_run_returns_result(self):
        scenario = VoipScenario(num_stations=4, duration=2.0)
        result = scenario.run(Dot11Protocol)
        assert isinstance(result, ScenarioResult)
        assert result.protocol == "802.11"
        assert result.num_stations == 4
        assert result.measured_ap_goodput_bps >= 0

    def test_useful_goodput_never_exceeds_raw(self):
        scenario = VoipScenario(num_stations=6, duration=2.0)
        result = scenario.run(AmpduProtocol)
        assert (result.measured_ap_useful_goodput_bps
                <= result.measured_ap_goodput_bps + 1e-9)

    def test_background_adds_arrivals(self):
        plain, _ = VoipScenario(num_stations=4, duration=2.0).build_arrivals()
        loaded, _ = VoipScenario(
            num_stations=4, duration=2.0, with_background=True
        ).build_arrivals()
        assert len(loaded) > len(plain)

    def test_deterministic_given_seed(self):
        a = VoipScenario(num_stations=4, duration=2.0, seed=9).run(CarpoolProtocol)
        b = VoipScenario(num_stations=4, duration=2.0, seed=9).run(CarpoolProtocol)
        assert a.measured_ap_goodput_bps == b.measured_ap_goodput_bps
        assert a.collisions == b.collisions

    @pytest.mark.slow
    def test_carpool_beats_dot11_under_contention(self):
        """The headline result, in miniature."""
        scenario = VoipScenario(num_stations=24, duration=4.0)
        carpool = scenario.run(CarpoolProtocol)
        dot11 = scenario.run(Dot11Protocol)
        assert (carpool.measured_ap_useful_goodput_bps
                > dot11.measured_ap_useful_goodput_bps)
        assert carpool.downlink_mean_delay < dot11.downlink_mean_delay


class TestCbrScenario:
    def test_latency_requirement_sets_aggregation_deadline(self):
        result = CbrScenario(
            num_stations=6, duration=2.0, latency_requirement=0.02,
            with_background=False,
        ).run(CarpoolProtocol)
        assert isinstance(result, ScenarioResult)

    def test_offered_load_scales_with_frame_size(self):
        small = CbrScenario(num_stations=4, duration=2.0, frame_bytes=100,
                            with_background=False).run(CarpoolProtocol)
        large = CbrScenario(num_stations=4, duration=2.0, frame_bytes=1000,
                            with_background=False).run(CarpoolProtocol)
        assert large.measured_ap_goodput_bps > 3 * small.measured_ap_goodput_bps

    def test_background_intensity_respected(self):
        light, _ = CbrScenario(num_stations=4, duration=2.0,
                               background_intensity=1.0).build_arrivals()
        heavy, _ = CbrScenario(num_stations=4, duration=2.0,
                               background_intensity=4.0).build_arrivals()
        assert len(heavy) > len(light)
