import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mac_address import MacAddress
from repro.core.mac_payload import pack_mpdus, unpack_mpdus
from repro.mac.block_ack import (
    BLOCK_ACK_WINDOW,
    BlockAck,
    ReorderScoreboard,
    missing_sequences,
)
from repro.mac.frame_formats import DataFrame

AP = MacAddress.from_int(100)
BSS = MacAddress.from_int(200)
STA = MacAddress.from_int(3)


class TestBlockAck:
    def test_round_trip_bytes(self):
        ba = BlockAck(start_sequence=100, bitmap=0b1011)
        assert BlockAck.from_bytes(ba.to_bytes()) == ba
        assert len(ba.to_bytes()) == 10

    def test_acknowledges_window(self):
        ba = BlockAck(start_sequence=10, bitmap=0b101)
        assert ba.acknowledges(10)
        assert not ba.acknowledges(11)
        assert ba.acknowledges(12)
        assert not ba.acknowledges(10 + BLOCK_ACK_WINDOW)  # outside window

    def test_sequence_wraparound(self):
        ba = BlockAck(start_sequence=4090, bitmap=0b1 | (1 << 10))
        assert ba.acknowledges(4090)
        assert ba.acknowledges((4090 + 10) % 4096)

    def test_bounds(self):
        with pytest.raises(ValueError):
            BlockAck(start_sequence=4096, bitmap=0)
        with pytest.raises(ValueError):
            BlockAck(start_sequence=0, bitmap=1 << 64)
        with pytest.raises(ValueError):
            BlockAck.from_bytes(b"short")

    def test_received_count(self):
        assert BlockAck(0, 0b1110).received_count == 3


class TestScoreboard:
    def test_marks_and_reports(self):
        board = ReorderScoreboard(start_sequence=50)
        for seq in (50, 52, 53):
            board.mark_received(seq)
        ba = board.to_block_ack()
        assert ba.acknowledges(50)
        assert not ba.acknowledges(51)
        assert ba.acknowledges(52)
        assert ba.received_count == 3

    def test_out_of_window_ignored(self):
        board = ReorderScoreboard(start_sequence=0)
        board.mark_received(500)
        assert board.to_block_ack().received_count == 0

    def test_missing_sequences_order_preserved(self):
        board = ReorderScoreboard(start_sequence=0)
        board.mark_received(1)
        board.mark_received(3)
        ba = board.to_block_ack()
        assert missing_sequences(ba, [0, 1, 2, 3, 4]) == [0, 2, 4]

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, BLOCK_ACK_WINDOW - 1), max_size=BLOCK_ACK_WINDOW),
           st.integers(0, 4095))
    def test_property_scoreboard_faithful(self, received_offsets, start):
        board = ReorderScoreboard(start_sequence=start)
        for offset in received_offsets:
            board.mark_received((start + offset) % 4096)
        ba = board.to_block_ack()
        for offset in range(BLOCK_ACK_WINDOW):
            seq = (start + offset) % 4096
            assert ba.acknowledges(seq) == (offset in received_offsets)


class TestSelectiveRetransmitPipeline:
    def test_corrupted_aggregate_yields_exact_retransmit_set(self):
        """MPDU train → corruption → salvage → scoreboard → BlockAck →
        the transmitter resends exactly the lost MPDUs."""
        rng = np.random.default_rng(0)
        mpdus = [
            DataFrame(receiver=STA, transmitter=AP, bssid=BSS,
                      payload=bytes(rng.integers(0, 256, 80, dtype=np.uint8)),
                      sequence=100 + i)
            for i in range(6)
        ]
        packed = bytearray(pack_mpdus(mpdus))
        # Corrupt MPDU #2's payload (its FCS will fail).
        offset = sum(4 + len(m.to_bytes()) for m in mpdus[:2]) + 4 + 30
        packed[offset] ^= 0xFF

        recovered, salvaged, lost = unpack_mpdus(bytes(packed))
        assert lost == 1
        board = ReorderScoreboard(start_sequence=100)
        for frame in recovered:
            board.mark_received(frame.sequence)
        ba = board.to_block_ack()
        resend = missing_sequences(ba, [m.sequence for m in mpdus])
        assert resend == [102]
