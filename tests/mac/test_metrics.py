import pytest

from repro.mac.frames import Direction, MacFrame
from repro.mac.metrics import MetricsCollector


def _frame(direction=Direction.DOWNLINK, size=1000, t=1.0):
    return MacFrame(destination="sta0", size_bytes=size, arrival_time=t,
                    direction=direction)


class TestCollector:
    def test_goodput_split_by_direction(self):
        m = MetricsCollector()
        m.record_delivery(_frame(Direction.DOWNLINK, 1000), 1.1)
        m.record_delivery(_frame(Direction.UPLINK, 500), 1.2)
        s = m.summary(10.0)
        assert s.downlink_goodput_bps == pytest.approx(800.0)
        assert s.uplink_goodput_bps == pytest.approx(400.0)

    def test_delays(self):
        m = MetricsCollector()
        m.record_delivery(_frame(t=1.0), 1.5)
        m.record_delivery(_frame(t=2.0), 2.1)
        s = m.summary(10.0)
        assert s.downlink_mean_delay == pytest.approx(0.3)
        assert s.downlink_p95_delay <= 0.5

    def test_latency_bound_excludes_late_frames(self):
        m = MetricsCollector()
        m.record_delivery(_frame(size=1000, t=1.0), 1.05)  # 50 ms
        m.record_delivery(_frame(size=1000, t=1.0), 2.0)  # 1 s: late
        s = m.summary(10.0, latency_bound=0.1)
        assert s.downlink_goodput_bps == pytest.approx(800.0)
        raw = m.summary(10.0)
        assert raw.downlink_goodput_bps == pytest.approx(1600.0)

    def test_per_source_goodput(self):
        m = MetricsCollector()
        m.record_delivery(_frame(size=1000), 1.1, source="ap")
        m.record_delivery(_frame(size=2000), 1.1, source="ap1")
        assert m.goodput_of_source("ap", 10.0) == pytest.approx(800.0)
        assert m.goodput_of_source("ap1", 10.0) == pytest.approx(1600.0)
        assert m.goodput_of_source("nobody", 10.0) == 0.0

    def test_per_source_with_bound(self):
        m = MetricsCollector()
        m.record_delivery(_frame(size=1000, t=1.0), 5.0, source="ap")
        assert m.goodput_of_source("ap", 10.0, latency_bound=0.1) == 0.0

    def test_counters(self):
        m = MetricsCollector()
        m.record_transmission(1e-3)
        m.record_collision(2e-3)
        m.record_retransmission(3)
        m.record_drop(_frame())
        s = m.summary(1.0)
        assert s.transmissions == 1
        assert s.collisions == 1
        assert s.retransmitted_subframes == 3
        assert s.dropped_frames == 1
        assert s.channel_busy_fraction == pytest.approx(3e-3)

    def test_busy_fraction_capped(self):
        m = MetricsCollector()
        m.record_transmission(5.0)
        assert m.summary(1.0).channel_busy_fraction == 1.0

    def test_empty_summary(self):
        s = MetricsCollector().summary(1.0)
        assert s.downlink_goodput_bps == 0.0
        assert s.downlink_mean_delay == 0.0

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            MetricsCollector().summary(0.0)
        with pytest.raises(ValueError):
            MetricsCollector().goodput_of_source("ap", -1.0)
