import pytest

from repro.mac.airtime import (
    ack_airtime,
    aggregated_frame_airtime,
    carpool_frame_airtime,
    payload_airtime,
    sequential_ack_airtime,
    single_frame_airtime,
)
from repro.mac.parameters import DEFAULT_PARAMETERS, PhyMacParameters


class TestParameters:
    def test_table2_values(self):
        """Paper Table 2."""
        p = DEFAULT_PARAMETERS
        assert p.slot_time == 9e-6
        assert p.sifs == 10e-6
        assert p.difs == 28e-6
        assert p.cw_min == 15
        assert p.cw_max == 1023
        assert p.plcp_header_time == 28e-6
        assert p.propagation_delay == 1e-6

    def test_difs_relation(self):
        """DIFS = SIFS + 2 slots in 802.11n 2.4 GHz."""
        p = DEFAULT_PARAMETERS
        assert p.difs == pytest.approx(p.sifs + 2 * p.slot_time)

    def test_invalid_cw_rejected(self):
        with pytest.raises(ValueError):
            PhyMacParameters(cw_min=31, cw_max=15)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            PhyMacParameters(slot_time=0.0)

    def test_eifs_larger_than_difs(self):
        assert DEFAULT_PARAMETERS.eifs > DEFAULT_PARAMETERS.difs


class TestAirtime:
    def test_payload_scales_with_rate(self):
        p = DEFAULT_PARAMETERS
        assert payload_airtime(1500, p) == pytest.approx(1500 * 8 / p.phy_rate_bps)

    def test_single_frame_includes_plcp(self):
        p = DEFAULT_PARAMETERS
        assert single_frame_airtime(100, p) == pytest.approx(
            p.plcp_header_time + payload_airtime(100, p)
        )

    def test_ack_at_basic_rate(self):
        p = DEFAULT_PARAMETERS
        assert ack_airtime(p) == pytest.approx(p.plcp_header_time + 14 * 8 / p.basic_rate_bps)

    def test_carpool_overhead_is_small(self):
        """A Carpool frame for 8 receivers adds 2 A-HDR symbols + 8 SIGs =
        10 OFDM symbols over the bare aggregate — tens of µs, not the
        59 µs-per-8-addresses of explicit PHY-header addressing (§3)."""
        p = DEFAULT_PARAMETERS
        sizes = [1500] * 8
        carpool = carpool_frame_airtime(sizes, p)
        bare = aggregated_frame_airtime(sum(sizes), p)
        overhead = carpool - bare
        assert overhead == pytest.approx(10 * p.symbol_duration)
        assert overhead < 59e-6

    def test_sequential_ack_linear_in_receivers(self):
        p = DEFAULT_PARAMETERS
        one = sequential_ack_airtime(1, p)
        eight = sequential_ack_airtime(8, p)
        assert eight == pytest.approx(8 * one)

    def test_carpool_empty_rejected(self):
        with pytest.raises(ValueError):
            carpool_frame_airtime([], DEFAULT_PARAMETERS)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            payload_airtime(-1, DEFAULT_PARAMETERS)

    def test_carpool_beats_per_frame_transmissions(self):
        """One Carpool frame for 8 STAs costs far less air than 8 separate
        exchanges — the contention-reduction argument of §2."""
        p = DEFAULT_PARAMETERS
        sizes = [300] * 8
        carpool = carpool_frame_airtime(sizes, p) + sequential_ack_airtime(8, p)
        separate = sum(
            single_frame_airtime(s, p) + p.sifs + ack_airtime(p) + p.difs for s in sizes
        )
        # ~30 % less air even before counting the 8× fewer backoffs.
        assert carpool < 0.75 * separate
