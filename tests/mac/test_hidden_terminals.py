"""Hidden-terminal behaviour and the §4.2 RTS/CTS mitigation."""

import pytest

from repro.mac import (
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Arrival, Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

PERFECT = FixedFerModel(0.0)


def _arrivals(n_frames=1200, n_stas=4, size=600):
    """A saturating workload: every STA keeps an uplink backlog, so hidden
    stations are primed to fire during the AP's transmissions."""
    out = []
    for k in range(n_frames):
        out.append(Arrival(time=0.0002 + 0.0006 * k, source=AP_NAME,
                           destination=f"sta{k % n_stas}", size_bytes=size,
                           direction=Direction.DOWNLINK))
        for i in range(n_stas):
            out.append(Arrival(time=0.0004 + 0.0006 * k + 1e-5 * i,
                               source=f"sta{i}", destination=AP_NAME,
                               size_bytes=size, direction=Direction.UPLINK))
    out.sort(key=lambda a: a.time)
    return out


def _sim(hidden_pairs=None, use_rts_cts=False, seed=5, protocol_cls=Dot11Protocol):
    protocol = protocol_cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005))
    return WlanSimulator(
        protocol, 4, _arrivals(), error_model=PERFECT, rng=RngStream(seed),
        hidden_pairs=hidden_pairs, use_rts_cts=use_rts_cts,
    )


class TestHiddenTerminals:
    def test_no_hidden_pairs_no_hidden_collisions(self):
        sim = _sim()
        sim.run(1.0)
        assert sim.hidden_collisions == 0

    def test_hidden_pair_causes_collisions(self):
        sim = _sim(hidden_pairs={(AP_NAME, "sta3")})
        sim.run(1.0)
        assert sim.hidden_collisions > 0

    def test_hidden_collisions_destroy_goodput(self):
        clean = _sim()
        clean_summary = clean.run(1.0)
        dirty = _sim(hidden_pairs={(AP_NAME, "sta2"), (AP_NAME, "sta3")})
        dirty_summary = dirty.run(1.0)
        assert (dirty_summary.downlink_goodput_bps
                < clean_summary.downlink_goodput_bps)

    def test_rts_cts_recovers_goodput(self):
        """§4.2: the multicast-RTS/CTS mechanism shields the data frame —
        only the short RTS stays vulnerable."""
        hidden = {(AP_NAME, "sta2"), (AP_NAME, "sta3")}
        bare = _sim(hidden_pairs=hidden).run(1.0)
        shielded = _sim(hidden_pairs=hidden, use_rts_cts=True).run(1.0)
        assert (shielded.downlink_goodput_bps > 1.1 * bare.downlink_goodput_bps)

    def test_rts_cts_with_carpool_sequence(self):
        hidden = {(AP_NAME, "sta2")}
        sim = _sim(hidden_pairs=hidden, use_rts_cts=True,
                   protocol_cls=CarpoolProtocol)
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames > 0

    def test_hidden_retries_eventually_drop(self):
        """A victim forever colliding with a hidden node drops frames at
        the retry limit instead of looping."""
        sim = _sim(hidden_pairs={(AP_NAME, "sta0"), (AP_NAME, "sta1"),
                                 (AP_NAME, "sta2"), (AP_NAME, "sta3")},
                   seed=11)
        summary = sim.run(1.0)
        assert summary.dropped_frames > 0 or sim.hidden_collisions > 0

    def test_pair_symmetry(self):
        """(a, b) and (b, a) describe the same hidden pair."""
        sim1 = _sim(hidden_pairs={(AP_NAME, "sta3")})
        sim2 = _sim(hidden_pairs={("sta3", AP_NAME)})
        s1 = sim1.run(0.5)
        s2 = sim2.run(0.5)
        assert s1.downlink_goodput_bps == s2.downlink_goodput_bps
