"""Per-node airtime/energy accounting (§8)."""

import pytest

from repro.core.energy import WPC55AG
from repro.mac import (
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Arrival, Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream


def _arrivals(n=200, stas=4):
    out = []
    for k in range(n):
        out.append(Arrival(time=0.001 + 0.001 * k, source=AP_NAME,
                           destination=f"sta{k % stas}", size_bytes=400,
                           direction=Direction.DOWNLINK))
    return out


def _run(protocol_cls, seed=3):
    sim = WlanSimulator(
        protocol_cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.004)),
        4, _arrivals(), error_model=FixedFerModel(0.0), rng=RngStream(seed),
    )
    summary = sim.run(1.0)
    return sim, summary


class TestAirtimeAccounting:
    def test_ap_transmits_stations_receive(self):
        sim, _ = _run(Dot11Protocol)
        assert sim.airtime_by_node[AP_NAME]["tx"] > 0
        for i in range(4):
            record = sim.airtime_by_node[f"sta{i}"]
            assert record["rx"] > 0
            assert record["tx"] > 0  # ACKs

    def test_airtimes_bounded_by_duration(self):
        sim, _ = _run(CarpoolProtocol)
        for record in sim.airtime_by_node.values():
            assert 0 <= record["tx"] <= 1.0
            assert 0 <= record["rx"] <= 1.0

    def test_carpool_overhearers_pay_ahdr_only(self):
        """A station not addressed by a Carpool frame receives the PLCP +
        A-HDR, far less than an addressed station's full subframe span."""
        arrivals = [Arrival(time=0.001 + 0.001 * k, source=AP_NAME,
                            destination="sta0", size_bytes=1000,
                            direction=Direction.DOWNLINK) for k in range(100)]
        sim = WlanSimulator(
            CarpoolProtocol(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.004)),
            2, arrivals, error_model=FixedFerModel(0.0), rng=RngStream(4),
        )
        sim.run(1.0)
        addressed = sim.airtime_by_node["sta0"]["rx"]
        bystander = sim.airtime_by_node["sta1"]["rx"]
        assert 0 < bystander < 0.6 * addressed


class TestEnergyReport:
    def test_report_covers_all_nodes(self):
        sim, _ = _run(Dot11Protocol)
        report = sim.energy_report(1.0)
        assert set(report) == set(sim.nodes)

    def test_idle_node_baseline_energy(self):
        sim, _ = _run(Dot11Protocol)
        report = sim.energy_report(1.0)
        # Nothing is below pure-idle energy or above pure-TX energy.
        for joules in report.values():
            assert WPC55AG.idle_watts * 1.0 <= joules <= WPC55AG.tx_watts * 1.0 + 1e-9

    def test_paper_claim_overhead_small(self):
        """§8: a Carpool bystander spends ≈0.3 % more energy than a plain
        802.11 bystander — the A-HDR + false-positive cost is tiny."""
        sim_carpool, _ = _run(CarpoolProtocol, seed=5)
        sim_dot11, _ = _run(Dot11Protocol, seed=5)
        carpool = sim_carpool.energy_report(1.0)
        dot11 = sim_dot11.energy_report(1.0)
        # Compare a station's energy across schemes: same order of
        # magnitude, small relative difference.
        for sta in ("sta0", "sta1"):
            ratio = carpool[sta] / dot11[sta]
            assert ratio == pytest.approx(1.0, abs=0.05)

    def test_custom_power_model(self):
        sim, _ = _run(Dot11Protocol)
        from repro.core.energy import DevicePowerModel

        flat = DevicePowerModel(1.0, 1.0, 1.0)
        report = sim.energy_report(2.0, power_model=flat)
        for joules in report.values():
            assert joules == pytest.approx(2.0)
