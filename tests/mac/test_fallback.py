"""FallbackCarpoolProtocol: demotion, fail-fast, re-promotion."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.mac import (
    Arrival,
    DEFAULT_PARAMETERS,
    FallbackCarpoolProtocol,
    PROTOCOLS,
    WlanSimulator,
    FixedFerModel,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream


def _protocol(**kwargs):
    return FallbackCarpoolProtocol(
        DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005), **kwargs)


class TestDemotionLogic:
    def test_registered(self):
        assert PROTOCOLS["Carpool-fallback"] is FallbackCarpoolProtocol

    def test_healthy_receiver_stays_carpool(self):
        proto = _protocol()
        for i in range(50):
            proto.on_subframe_result("sta0", True, i * 1e-3)
        assert proto.is_carpool("sta0")
        assert proto.demotions == 0

    def test_fail_fast_demotes_on_consecutive_failures(self):
        """An outage (all failures) must demote long before the windowed
        rate would react — within ``fail_fast`` subframes."""
        proto = _protocol(fail_fast=3)
        # A long success history that would anchor the windowed rate.
        for i in range(20):
            proto.on_subframe_result("sta0", True, i * 1e-3)
        proto.on_subframe_result("sta0", False, 0.021)
        proto.on_subframe_result("sta0", False, 0.022)
        assert proto.is_carpool("sta0")  # 2 < fail_fast
        proto.on_subframe_result("sta0", False, 0.023)
        assert not proto.is_carpool("sta0")
        assert proto.demotions == 1
        assert proto.demoted_stations() == {"sta0"}

    def test_success_resets_the_failure_streak(self):
        proto = _protocol(fail_fast=3, failure_threshold=0.95)
        for t, ok in enumerate([False, False, True, False, False, True]):
            proto.on_subframe_result("sta0", ok, t * 1e-3)
        assert proto.is_carpool("sta0")

    def test_windowed_rate_demotes_on_sustained_loss(self):
        """Interleaved failures below the fail-fast streak still demote
        once the windowed rate crosses the threshold."""
        proto = _protocol(failure_threshold=0.5, window=10, min_attempts=4,
                          fail_fast=0)
        outcomes = [False, False, True, False, False, True, False, False]
        for t, ok in enumerate(outcomes):
            proto.on_subframe_result("sta0", ok, t * 1e-3)
        assert not proto.is_carpool("sta0")

    def test_demotion_is_per_receiver(self):
        proto = _protocol(fail_fast=2)
        for t in range(2):
            proto.on_subframe_result("bad", False, t * 1e-3)
            proto.on_subframe_result("good", True, t * 1e-3)
        assert not proto.is_carpool("bad")
        assert proto.is_carpool("good")

    def test_never_capable_stations_stay_legacy(self):
        proto = _protocol(carpool_stations=("sta0",))
        assert proto.is_carpool("sta0")
        assert not proto.is_carpool("sta1")


class TestRepromotion:
    def test_cooldown_restores_carpool_service(self):
        proto = _protocol(fail_fast=2, cooldown=0.25)
        proto.on_subframe_result("sta0", False, 0.010)
        proto.on_subframe_result("sta0", False, 0.011)
        assert not proto.is_carpool("sta0")
        proto._maybe_repromote(0.100)
        assert not proto.is_carpool("sta0")  # cooldown not yet elapsed
        proto._maybe_repromote(0.300)
        assert proto.is_carpool("sta0")
        assert proto.repromotions == 1

    def test_history_cleared_on_demotion(self):
        """After re-promotion the receiver starts with a clean slate: old
        failures must not trigger an instant re-demotion."""
        proto = _protocol(fail_fast=3, cooldown=0.1)
        for t in range(3):
            proto.on_subframe_result("sta0", False, t * 1e-3)
        proto._maybe_repromote(1.0)
        proto.on_subframe_result("sta0", False, 1.001)
        assert proto.is_carpool("sta0")  # one failure < fail_fast again


class TestEndToEnd:
    def test_fallback_avoids_outage_drops(self):
        """Under periodic total A-HDR outages the fallback demotes to
        unicast and delivers what naive Carpool drops."""
        arrivals = [
            Arrival(time=0.002 * i, source=AP_NAME, destination=f"sta{i % 4}",
                    size_bytes=300, direction=Direction.DOWNLINK)
            for i in range(200)
        ]
        specs = [FaultSpec.make("ahdr_corruption", probability=1.0,
                                miss_probability=1.0, start=t, stop=t + 0.06,
                                seed_salt=f"w{k}")
                 for k, t in enumerate((0.05, 0.45, 0.85))]
        plan = FaultPlan.of(*specs)
        results = {}
        for name in ("Carpool", "Carpool-fallback"):
            proto = PROTOCOLS[name](DEFAULT_PARAMETERS,
                                    AggregationLimits(max_latency=0.005))
            sim = WlanSimulator(proto, 4, arrivals,
                                error_model=FixedFerModel(0.0),
                                rng=RngStream(3), faults=plan,
                                sequential_ack_recovery=name != "Carpool")
            results[name] = sim.run(1.2)
        assert results["Carpool"].dropped_frames > 0
        assert (results["Carpool-fallback"].dropped_frames
                < results["Carpool"].dropped_frames)
        assert (results["Carpool-fallback"].delivered_downlink_frames
                > results["Carpool"].delivered_downlink_frames)
