from repro.mac import (
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Arrival, Direction
from repro.util.rng import RngStream


def _arrivals(n=40):
    out = []
    for k in range(n):
        out.append(Arrival(time=0.0005 * k + 1e-4, source=AP_NAME,
                           destination=f"sta{k % 3}", size_bytes=200,
                           direction=Direction.DOWNLINK))
        out.append(Arrival(time=0.0005 * k + 2e-4, source=f"sta{k % 3}",
                           destination=AP_NAME, size_bytes=200,
                           direction=Direction.UPLINK))
    return out


class TestTimeline:
    def test_disabled_by_default(self):
        sim = WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 3, _arrivals(),
                            error_model=FixedFerModel(0.0), rng=RngStream(1))
        sim.run(0.2)
        assert sim.timeline is None

    def test_records_arrivals_and_transmissions(self):
        sim = WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 3, _arrivals(),
                            error_model=FixedFerModel(0.0), rng=RngStream(1))
        sim.enable_timeline()
        sim.run(0.2)
        kinds = {event for _, event, _, _ in sim.timeline}
        assert "arrival" in kinds
        assert "transmit" in kinds

    def test_times_monotone(self):
        sim = WlanSimulator(CarpoolProtocol(DEFAULT_PARAMETERS), 3, _arrivals(),
                            error_model=FixedFerModel(0.0), rng=RngStream(2))
        sim.enable_timeline()
        sim.run(0.2)
        times = [t for t, _, _, _ in sim.timeline]
        assert times == sorted(times)

    def test_collisions_logged_under_contention(self):
        arrivals = []
        for k in range(200):
            for i in range(4):
                arrivals.append(Arrival(time=0.0004 * k + 1e-6 * i,
                                        source=f"sta{i}", destination=AP_NAME,
                                        size_bytes=400,
                                        direction=Direction.UPLINK))
        sim = WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 4, arrivals,
                            error_model=FixedFerModel(0.0), rng=RngStream(3))
        sim.enable_timeline()
        summary = sim.run(0.3)
        logged = sum(1 for _, event, _, _ in sim.timeline if event == "collision")
        assert logged == summary.collisions
        assert logged > 0
