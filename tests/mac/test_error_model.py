import numpy as np
import pytest

from repro.mac.error_model import BerCurveErrorModel, FixedFerModel, fit_ber_curve
from repro.util.rng import RngStream


class TestBerCurve:
    def test_standard_error_grows_with_index(self):
        model = BerCurveErrorModel()
        assert model.symbol_error(500, rte=False) > model.symbol_error(0, rte=False)

    def test_rte_error_flat(self):
        model = BerCurveErrorModel()
        assert model.symbol_error(500, rte=True) == model.symbol_error(0, rte=True)

    def test_error_capped(self):
        model = BerCurveErrorModel(base_symbol_error=0.1, bias_growth=1.0)
        assert model.symbol_error(10_000, rte=False) == 0.5

    def test_success_probability_decreases_with_length(self):
        model = BerCurveErrorModel()
        p_short = model.subframe_success_probability(0, 10, rte=False)
        p_long = model.subframe_success_probability(0, 500, rte=False)
        assert p_long < p_short <= 1.0

    def test_tail_subframes_fail_more_without_rte(self):
        """The mechanism that penalises MU-Aggregation: same subframe
        length, later position, lower success."""
        model = BerCurveErrorModel()
        head = model.subframe_success_probability(0, 100, rte=False)
        tail = model.subframe_success_probability(900, 100, rte=False)
        assert tail < 0.8 * head

    def test_rte_position_independent(self):
        model = BerCurveErrorModel()
        head = model.subframe_success_probability(0, 100, rte=True)
        tail = model.subframe_success_probability(900, 100, rte=True)
        assert head == pytest.approx(tail)

    def test_draw_statistics(self):
        model = BerCurveErrorModel(base_symbol_error=5e-3)
        rng = RngStream(0).child("e")
        p = model.subframe_success_probability(0, 50, rte=False)
        draws = [model.draw_subframe(rng, 0, 50, rte=False) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(p, abs=0.03)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BerCurveErrorModel(base_symbol_error=2.0)
        with pytest.raises(ValueError):
            BerCurveErrorModel(bias_growth=-1.0)
        with pytest.raises(ValueError):
            BerCurveErrorModel().subframe_success_probability(0, 0, rte=False)


class TestFixedFer:
    def test_zero_fer_always_succeeds(self):
        model = FixedFerModel(0.0)
        rng = RngStream(1).child("e")
        assert all(model.draw_subframe(rng, 0, 10, False) for _ in range(100))

    def test_certain_failure(self):
        model = FixedFerModel(1.0)
        rng = RngStream(2).child("e")
        assert not any(model.draw_subframe(rng, 0, 10, False) for _ in range(100))


class TestFit:
    def test_recovers_linear_curve(self):
        true = BerCurveErrorModel(base_symbol_error=3e-4, bias_growth=0.05,
                                  rte_symbol_error=2.5e-4)
        n = np.arange(120)
        standard = np.asarray(true.symbol_error(n, rte=False))
        rte = np.asarray(true.symbol_error(n, rte=True))
        fitted = fit_ber_curve(standard, rte)
        assert fitted.base_symbol_error == pytest.approx(3e-4, rel=0.05)
        assert fitted.bias_growth == pytest.approx(0.05, rel=0.05)
        assert fitted.rte_symbol_error == pytest.approx(2.5e-4, rel=0.05)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_ber_curve(np.array([1e-3]), np.array([1e-3]))
