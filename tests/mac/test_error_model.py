import numpy as np
import pytest

from repro.mac.error_model import BerCurveErrorModel, FixedFerModel, fit_ber_curve
from repro.util.rng import RngStream


class TestBerCurve:
    def test_standard_error_grows_with_index(self):
        model = BerCurveErrorModel()
        assert model.symbol_error(500, rte=False) > model.symbol_error(0, rte=False)

    def test_rte_error_flat(self):
        model = BerCurveErrorModel()
        assert model.symbol_error(500, rte=True) == model.symbol_error(0, rte=True)

    def test_error_capped(self):
        model = BerCurveErrorModel(base_symbol_error=0.1, bias_growth=1.0)
        assert model.symbol_error(10_000, rte=False) == 0.5

    def test_success_probability_decreases_with_length(self):
        model = BerCurveErrorModel()
        p_short = model.subframe_success_probability(0, 10, rte=False)
        p_long = model.subframe_success_probability(0, 500, rte=False)
        assert p_long < p_short <= 1.0

    def test_tail_subframes_fail_more_without_rte(self):
        """The mechanism that penalises MU-Aggregation: same subframe
        length, later position, lower success."""
        model = BerCurveErrorModel()
        head = model.subframe_success_probability(0, 100, rte=False)
        tail = model.subframe_success_probability(900, 100, rte=False)
        assert tail < 0.8 * head

    def test_rte_position_independent(self):
        model = BerCurveErrorModel()
        head = model.subframe_success_probability(0, 100, rte=True)
        tail = model.subframe_success_probability(900, 100, rte=True)
        assert head == pytest.approx(tail)

    def test_draw_statistics(self):
        model = BerCurveErrorModel(base_symbol_error=5e-3)
        rng = RngStream(0).child("e")
        p = model.subframe_success_probability(0, 50, rte=False)
        draws = [model.draw_subframe(rng, 0, 50, rte=False) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(p, abs=0.03)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BerCurveErrorModel(base_symbol_error=2.0)
        with pytest.raises(ValueError):
            BerCurveErrorModel(bias_growth=-1.0)
        with pytest.raises(ValueError):
            BerCurveErrorModel().subframe_success_probability(0, 0, rte=False)


class TestFastPaths:
    """The vectorised paths must agree with the scalar originals."""

    def test_scalar_memo_returns_exact_original_float(self):
        model = BerCurveErrorModel()
        for start, n, rte in [(0, 1, False), (7, 113, False), (500, 40, True)]:
            exact = model._success_probability_exact(start, n, rte)
            assert model.subframe_success_probability(start, n, rte) == exact
            # Second lookup serves the memo — still the identical float.
            assert model.subframe_success_probability(start, n, rte) == exact

    def test_array_path_matches_scalar_to_machine_precision(self):
        model = BerCurveErrorModel(base_symbol_error=1e-3, bias_growth=0.2)
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 900, size=200)
        lengths = rng.integers(1, 120, size=200)
        for rte in (False, True):
            vectorised = model.subframe_success_probability(starts, lengths, rte)
            scalar = np.array([
                model.subframe_success_probability(int(s), int(n), rte)
                for s, n in zip(starts, lengths)
            ])
            np.testing.assert_allclose(vectorised, scalar, rtol=1e-12, atol=0)

    def test_array_symbol_error_matches_scalar(self):
        model = BerCurveErrorModel(base_symbol_error=1e-3, bias_growth=0.3)
        indices = np.arange(0, 1200, 7)
        for rte in (False, True):
            vectorised = np.asarray(model.symbol_error(indices, rte))
            scalar = np.array([model.symbol_error(int(i), rte) for i in indices])
            np.testing.assert_array_equal(vectorised, scalar)

    def test_array_path_rejects_empty_subframes(self):
        model = BerCurveErrorModel()
        with pytest.raises(ValueError):
            model.subframe_success_probability(
                np.array([0, 5]), np.array([3, 0]), rte=False
            )

    def test_draw_subframes_bit_identical_to_sequential_draws(self):
        model = BerCurveErrorModel(base_symbol_error=5e-3, bias_growth=0.4)
        starts = [0, 10, 10, 250, 800]
        lengths = [10, 113, 113, 40, 113]
        flags = [False, False, True, False, True]
        batched = model.draw_subframes(
            RngStream(77).child("e"), starts, lengths, flags
        )
        sequential_rng = RngStream(77).child("e")
        sequential = [
            model.draw_subframe(sequential_rng, s, n, f)
            for s, n, f in zip(starts, lengths, flags)
        ]
        assert list(batched) == sequential

    def test_draw_subframes_scalar_rte_broadcasts(self):
        model = BerCurveErrorModel(base_symbol_error=5e-3)
        batched = model.draw_subframes(RngStream(3).child("e"),
                                       [0, 50, 100], [20, 20, 20], False)
        assert batched.shape == (3,)

    def test_fixed_fer_draw_subframes_matches_sequential(self):
        model = FixedFerModel(0.35)
        batched = model.draw_subframes(RngStream(9).child("e"),
                                       [0, 1, 2, 3], [5, 5, 5, 5], False)
        rng = RngStream(9).child("e")
        sequential = [model.draw_subframe(rng, i, 5, False) for i in range(4)]
        assert list(batched) == sequential


class TestFixedFer:
    def test_zero_fer_always_succeeds(self):
        model = FixedFerModel(0.0)
        rng = RngStream(1).child("e")
        assert all(model.draw_subframe(rng, 0, 10, False) for _ in range(100))

    def test_certain_failure(self):
        model = FixedFerModel(1.0)
        rng = RngStream(2).child("e")
        assert not any(model.draw_subframe(rng, 0, 10, False) for _ in range(100))


class TestFit:
    def test_recovers_linear_curve(self):
        true = BerCurveErrorModel(base_symbol_error=3e-4, bias_growth=0.05,
                                  rte_symbol_error=2.5e-4)
        n = np.arange(120)
        standard = np.asarray(true.symbol_error(n, rte=False))
        rte = np.asarray(true.symbol_error(n, rte=True))
        fitted = fit_ber_curve(standard, rte)
        assert fitted.base_symbol_error == pytest.approx(3e-4, rel=0.05)
        assert fitted.bias_growth == pytest.approx(0.05, rel=0.05)
        assert fitted.rte_symbol_error == pytest.approx(2.5e-4, rel=0.05)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_ber_curve(np.array([1e-3]), np.array([1e-3]))
