"""Engine edge cases: aggregation deadlines, DIFS accounting, multi-AP."""

import pytest

from repro.mac import (
    AggregationLimits,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Arrival, Direction
from repro.util.rng import RngStream

PERFECT = FixedFerModel(0.0)


def _down(t, sta="sta0", size=300):
    return Arrival(time=t, source=AP_NAME, destination=sta, size_bytes=size,
                   direction=Direction.DOWNLINK)


class TestAggregationDeadlineInEngine:
    def test_ap_waits_for_deadline(self):
        """A lone queued frame transmits only once its aggregation
        deadline elapses (Carpool's ready_time)."""
        limits = AggregationLimits(max_latency=0.050)
        sim = WlanSimulator(
            CarpoolProtocol(DEFAULT_PARAMETERS, limits), 2,
            [_down(0.010)], error_model=PERFECT, rng=RngStream(1),
        )
        summary = sim.run(0.5)
        assert summary.delivered_downlink_frames == 1
        # Delivery waited out most of the 50 ms deadline.
        assert summary.downlink_mean_delay > 0.045

    def test_full_batch_releases_early(self):
        """Eight distinct destinations queued → no waiting."""
        limits = AggregationLimits(max_latency=0.050)
        arrivals = [_down(0.010 + 1e-5 * i, f"sta{i}") for i in range(8)]
        sim = WlanSimulator(
            CarpoolProtocol(DEFAULT_PARAMETERS, limits), 8,
            arrivals, error_model=PERFECT, rng=RngStream(2),
        )
        summary = sim.run(0.5)
        assert summary.delivered_downlink_frames == 8
        assert summary.downlink_mean_delay < 0.010

    def test_dot11_never_waits(self):
        sim = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 2,
            [_down(0.010)], error_model=PERFECT, rng=RngStream(3),
        )
        summary = sim.run(0.5)
        assert summary.downlink_mean_delay < 2e-3


class TestTimingAccounting:
    def test_single_frame_delay_lower_bound(self):
        """Uncontended delivery still pays the PLCP header + payload
        airtime (no DIFS: the medium had been idle long before arrival)."""
        sim = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 1,
            [_down(0.001, size=1500)], error_model=PERFECT, rng=RngStream(4),
        )
        summary = sim.run(0.1)
        p = DEFAULT_PARAMETERS
        floor = p.plcp_header_time + 8 * 1500 / p.phy_rate_bps
        assert summary.downlink_mean_delay >= floor
        assert summary.downlink_mean_delay < floor + 1e-3  # and not much more

    def test_busy_fraction_tracks_load(self):
        light = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 1,
            [_down(0.001 * k) for k in range(50)],
            error_model=PERFECT, rng=RngStream(5),
        ).run(1.0)
        heavy = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 1,
            [_down(0.0001 * k, size=1500) for k in range(2000)],
            error_model=PERFECT, rng=RngStream(5),
        ).run(1.0)
        assert heavy.channel_busy_fraction > 3 * light.channel_busy_fraction


class TestMultiApInteraction:
    def test_co_channel_ap_steals_airtime(self):
        """The same AP load delivers with more delay when a second AP
        contends on the channel."""
        arrivals_alone = [_down(0.0002 * k, size=1200) for k in range(3000)]
        alone = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 1, arrivals_alone,
            error_model=PERFECT, rng=RngStream(6),
        ).run(1.0)

        arrivals_shared = list(arrivals_alone)
        arrivals_shared += [
            Arrival(time=0.0002 * k + 1e-5, source="ap1", destination="b_sta0",
                    size_bytes=1200, direction=Direction.DOWNLINK)
            for k in range(3000)
        ]
        arrivals_shared.sort(key=lambda a: a.time)
        shared = WlanSimulator(
            Dot11Protocol(DEFAULT_PARAMETERS), 2, arrivals_shared,
            error_model=PERFECT, rng=RngStream(6), num_aps=2,
            station_names=["sta0", "b_sta0"],
        )
        shared_summary = shared.run(1.0)
        assert (shared.metrics.goodput_of_source(AP_NAME, 1.0)
                < 0.9 * alone.downlink_goodput_bps)
        assert shared_summary.collisions > 0
