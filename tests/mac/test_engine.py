import pytest

from repro.mac import (
    AmpduProtocol,
    Arrival,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

PERFECT = FixedFerModel(0.0)


def _downlink(t, sta, size=300):
    return Arrival(time=t, source=AP_NAME, destination=sta, size_bytes=size,
                   direction=Direction.DOWNLINK)


def _uplink(t, sta, size=300):
    return Arrival(time=t, source=sta, destination=AP_NAME, size_bytes=size,
                   direction=Direction.UPLINK)


def _sim(protocol_cls, arrivals, n=4, error_model=PERFECT, seed=3, **kwargs):
    proto = protocol_cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005))
    return WlanSimulator(proto, n, arrivals, error_model=error_model,
                         rng=RngStream(seed), **kwargs)


class TestBasicDelivery:
    def test_single_downlink_frame_delivered(self):
        sim = _sim(Dot11Protocol, [_downlink(0.001, "sta0")])
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames == 1
        assert summary.downlink_goodput_bps == pytest.approx(8 * 300 / 1.0)

    def test_uplink_frame_delivered(self):
        sim = _sim(Dot11Protocol, [_uplink(0.001, "sta0")])
        summary = sim.run(1.0)
        assert summary.delivered_uplink_frames == 1

    def test_all_frames_delivered_under_light_load(self):
        arrivals = [_downlink(0.01 * i, f"sta{i % 4}") for i in range(50)]
        summary = _sim(Dot11Protocol, arrivals).run(2.0)
        assert summary.delivered_downlink_frames == 50
        assert summary.dropped_frames == 0

    def test_delay_includes_queueing(self):
        sim = _sim(Dot11Protocol, [_downlink(0.001, "sta0")])
        summary = sim.run(1.0)
        # Delay ≥ DIFS + frame airtime; well under a millisecond when idle.
        assert 30e-6 < summary.downlink_mean_delay < 2e-3

    def test_empty_workload(self):
        summary = _sim(Dot11Protocol, []).run(0.5)
        assert summary.delivered_downlink_frames == 0
        assert summary.transmissions == 0


class TestErrorsAndRetries:
    def test_certain_failure_drops_after_retry_limit(self):
        sim = _sim(Dot11Protocol, [_downlink(0.001, "sta0")],
                   error_model=FixedFerModel(1.0))
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames == 0
        assert summary.dropped_frames == 1
        assert summary.retransmitted_subframes == DEFAULT_PARAMETERS.retry_limit + 1

    def test_partial_fer_eventually_delivers(self):
        arrivals = [_downlink(0.002 * i, "sta0") for i in range(30)]
        sim = _sim(Dot11Protocol, arrivals, error_model=FixedFerModel(0.3))
        summary = sim.run(2.0)
        assert summary.delivered_downlink_frames >= 28
        assert summary.retransmitted_subframes > 0

    def test_failed_subframes_requeued_with_priority(self):
        """After a Carpool subframe fails, its frames ship in the very next
        AP transmission."""
        arrivals = [
            _downlink(0.0005, "sta0"),
            _downlink(0.0006, "sta1"),
        ]

        class FailFirstModel:
            def __init__(self):
                self.calls = 0

            def draw_subframe(self, rng, start, n, rte):
                self.calls += 1
                return self.calls != 1  # only the very first subframe fails

        sim = _sim(CarpoolProtocol, arrivals, error_model=FailFirstModel())
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames == 2
        assert summary.retransmitted_subframes == 1


class TestContention:
    def test_collisions_happen_under_pressure(self):
        arrivals = []
        for i in range(8):
            arrivals.extend(_uplink(0.0001 + 0.01 * k, f"sta{i}") for k in range(60))
        arrivals.sort(key=lambda a: a.time)
        summary = _sim(Dot11Protocol, arrivals, n=8).run(1.0)
        assert summary.collisions > 0

    def test_channel_never_overbooked(self):
        arrivals = [_downlink(0.001 * i, f"sta{i % 4}", size=1500) for i in range(500)]
        summary = _sim(AmpduProtocol, arrivals).run(1.0)
        assert summary.channel_busy_fraction <= 1.0

    def test_backoff_is_deterministic_given_seed(self):
        arrivals = [_downlink(0.001 * i, f"sta{i % 3}") for i in range(60)]
        s1 = _sim(Dot11Protocol, list(arrivals), seed=9).run(1.0)
        s2 = _sim(Dot11Protocol, list(arrivals), seed=9).run(1.0)
        assert s1.downlink_goodput_bps == s2.downlink_goodput_bps
        assert s1.collisions == s2.collisions

    def test_different_seeds_differ(self):
        arrivals = []
        for k in range(100):
            arrivals.extend(_uplink(0.005 * k, f"sta{i}") for i in range(4))
        s1 = _sim(Dot11Protocol, list(arrivals), seed=1).run(1.0)
        s2 = _sim(Dot11Protocol, list(arrivals), seed=2).run(1.0)
        assert s1.collisions != s2.collisions


class TestAggregationBehaviour:
    def test_carpool_fewer_transmissions_than_dot11(self):
        arrivals = []
        for k in range(100):
            for i in range(6):
                arrivals.append(_downlink(0.002 * k + 1e-5 * i, f"sta{i}", size=200))
        arrivals.sort(key=lambda a: a.time)
        dot11 = _sim(Dot11Protocol, list(arrivals), n=6).run(1.0)
        carpool = _sim(CarpoolProtocol, list(arrivals), n=6).run(1.0)
        assert carpool.transmissions < 0.5 * dot11.transmissions
        assert carpool.delivered_downlink_frames == dot11.delivered_downlink_frames

    def test_rts_cts_adds_overhead(self):
        arrivals = [_downlink(0.001 * i, f"sta{i % 4}") for i in range(50)]
        plain = _sim(CarpoolProtocol, list(arrivals)).run(1.0)
        with_rts = _sim(CarpoolProtocol, list(arrivals), use_rts_cts=True).run(1.0)
        assert with_rts.busy_time if hasattr(with_rts, "busy_time") else True
        assert with_rts.channel_busy_fraction > plain.channel_busy_fraction


class TestMultiAp:
    def test_two_aps_both_deliver(self):
        arrivals = [
            _downlink(0.001, "sta0"),
            Arrival(time=0.002, source="ap1", destination="b1_sta0",
                    size_bytes=300, direction=Direction.DOWNLINK),
        ]
        proto = Dot11Protocol(DEFAULT_PARAMETERS)
        sim = WlanSimulator(proto, 2, arrivals, error_model=PERFECT,
                            rng=RngStream(5), num_aps=2,
                            station_names=["sta0", "b1_sta0"])
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames == 2
        assert sim.metrics.goodput_of_source(AP_NAME, 1.0) == pytest.approx(2400.0)
        assert sim.metrics.goodput_of_source("ap1", 1.0) == pytest.approx(2400.0)

    def test_unknown_arrival_source_raises(self):
        sim = _sim(Dot11Protocol, [Arrival(time=0.001, source="ghost",
                                           destination="sta0", size_bytes=100)])
        with pytest.raises(KeyError):
            sim.run(0.1)


class TestValidation:
    def test_zero_stations_rejected(self):
        with pytest.raises(ValueError):
            WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 0, [])

    def test_zero_aps_rejected(self):
        with pytest.raises(ValueError):
            WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 1, [], num_aps=0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            _sim(Dot11Protocol, []).run(0.0)
