import pytest

from repro.core.compat import Capability
from repro.core.mac_address import MacAddress
from repro.mac.association import (
    ApAssociationService,
    AssocRequest,
    AssocResponse,
    Beacon,
    STATUS_REFUSED,
    STATUS_SUCCESS,
    negotiate,
)

BSSID = MacAddress.from_int(255)
AP_CAPS = Capability.DOT11A | Capability.DOT11N | Capability.CARPOOL


class TestFrames:
    def test_beacon_round_trip(self):
        beacon = Beacon(bssid=BSSID, capabilities=AP_CAPS)
        parsed = Beacon.from_bytes(beacon.to_bytes())
        assert parsed.bssid == BSSID
        assert parsed.capabilities == AP_CAPS

    def test_request_round_trip(self):
        request = AssocRequest(MacAddress.from_int(1), Capability.DOT11N)
        parsed = AssocRequest.from_bytes(request.to_bytes())
        assert parsed.capabilities == Capability.DOT11N

    def test_response_round_trip(self):
        response = AssocResponse(MacAddress.from_int(2), STATUS_SUCCESS, 7,
                                 Capability.DOT11N | Capability.CARPOOL)
        parsed = AssocResponse.from_bytes(response.to_bytes())
        assert parsed.association_id == 7
        assert parsed.negotiated & Capability.CARPOOL

    def test_fcs_protects_frames(self):
        raw = bytearray(Beacon(bssid=BSSID, capabilities=AP_CAPS).to_bytes())
        raw[4] ^= 0xFF
        with pytest.raises(ValueError):
            Beacon.from_bytes(bytes(raw))

    def test_type_confusion_rejected(self):
        raw = Beacon(bssid=BSSID, capabilities=AP_CAPS).to_bytes()
        with pytest.raises(ValueError):
            AssocRequest.from_bytes(raw)


class TestNegotiation:
    def test_intersection(self):
        sta = Capability.DOT11N | Capability.CARPOOL
        assert negotiate(AP_CAPS, sta) == sta

    def test_legacy_sta_gets_no_carpool(self):
        assert not negotiate(AP_CAPS, Capability.DOT11N) & Capability.CARPOOL

    def test_carpool_needs_both_sides(self):
        legacy_ap = Capability.DOT11A | Capability.DOT11N
        sta = Capability.DOT11N | Capability.CARPOOL
        assert not negotiate(legacy_ap, sta) & Capability.CARPOOL


class TestApService:
    def _service(self):
        return ApAssociationService(bssid=BSSID, capabilities=AP_CAPS)

    def test_full_handshake(self):
        service = self._service()
        sta = MacAddress.from_int(1)
        # The STA reads the beacon, sees Carpool support, and asks for it.
        beacon = Beacon.from_bytes(service.beacon().to_bytes())
        assert beacon.capabilities & Capability.CARPOOL
        request = AssocRequest(sta, Capability.DOT11N | Capability.CARPOOL)
        response = service.handle_request(request.to_bytes())
        assert response.status == STATUS_SUCCESS
        assert response.negotiated & Capability.CARPOOL
        assert service.table.supports_carpool(sta)

    def test_legacy_station_recorded_as_legacy(self):
        service = self._service()
        sta = MacAddress.from_int(2)
        service.handle_request(AssocRequest(sta, Capability.DOT11N).to_bytes())
        assert sta in service.table
        assert not service.table.supports_carpool(sta)

    def test_incompatible_station_refused(self):
        service = ApAssociationService(
            bssid=BSSID, capabilities=Capability.DOT11A
        )
        request = AssocRequest(MacAddress.from_int(3), Capability.DOT11N)
        response = service.handle_request(request.to_bytes())
        assert response.status == STATUS_REFUSED
        assert MacAddress.from_int(3) not in service.table

    def test_aids_unique_and_increasing(self):
        service = self._service()
        aids = []
        for i in range(5):
            request = AssocRequest(MacAddress.from_int(i), Capability.DOT11N)
            aids.append(service.handle_request(request.to_bytes()).association_id)
        assert aids == sorted(aids)
        assert len(set(aids)) == 5

    def test_carpool_station_listing(self):
        service = self._service()
        carpool_sta = MacAddress.from_int(10)
        legacy_sta = MacAddress.from_int(11)
        service.handle_request(
            AssocRequest(carpool_sta, Capability.DOT11N | Capability.CARPOOL).to_bytes()
        )
        service.handle_request(AssocRequest(legacy_sta, Capability.DOT11N).to_bytes())
        assert service.carpool_capable_stations() == [carpool_sta]
