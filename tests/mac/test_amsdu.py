import pytest

from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols.amsdu import AMSDU_MAX_BYTES, AmsduProtocol
from repro.mac.protocols.ampdu import AmpduProtocol
from repro.mac import Arrival, Direction, FixedFerModel, WlanSimulator
from repro.mac.engine import AP_NAME
from repro.mac.error_model import BerCurveErrorModel
from repro.util.rng import RngStream


def _ap():
    return Node("ap", DEFAULT_PARAMETERS, RngStream(0).child("ap"), is_ap=True)


def _frame(dest="sta0", size=500, t=0.0):
    return MacFrame(destination=dest, size_bytes=size, arrival_time=t)


class TestAmsduBuild:
    def test_single_subframe_single_crc(self):
        proto = AmsduProtocol(DEFAULT_PARAMETERS)
        ap = _ap()
        for _ in range(5):
            ap.enqueue(_frame())
        tx = proto.build(ap, 0.0)
        assert len(tx.subframes) == 1
        assert len(tx.subframes[0].frames) == 5

    def test_respects_byte_cap(self):
        proto = AmsduProtocol(DEFAULT_PARAMETERS)
        ap = _ap()
        for _ in range(30):
            ap.enqueue(_frame(size=500))
        tx = proto.build(ap, 0.0)
        assert tx.subframes[0].payload_bytes <= AMSDU_MAX_BYTES
        assert len(ap.queue) > 0

    def test_only_head_destination(self):
        proto = AmsduProtocol(DEFAULT_PARAMETERS)
        ap = _ap()
        ap.enqueue(_frame("sta0"))
        ap.enqueue(_frame("sta1"))
        tx = proto.build(ap, 0.0)
        assert {f.destination for f in tx.subframes[0].frames} == {"sta0"}

    def test_sta_uplink_single(self):
        proto = AmsduProtocol(DEFAULT_PARAMETERS)
        sta = Node("sta0", DEFAULT_PARAMETERS, RngStream(1).child("s"), is_ap=False)
        sta.enqueue(_frame("ap"))
        assert len(proto.build(sta, 0.0).subframes) == 1


class TestAllOrNothingReliability:
    def _arrivals(self):
        """Bursty downlink: 25 frames land together every 20 ms, so the AP
        always has a deep backlog and builds maximum-size aggregates."""
        out = []
        for burst in range(40):
            for i in range(25):
                out.append(Arrival(time=0.02 * burst + 1e-6 * i + 1e-4,
                                   source=AP_NAME, destination="sta0",
                                   size_bytes=700, direction=Direction.DOWNLINK))
        return out

    def test_amsdu_suffers_more_than_ampdu_under_bias(self):
        """With the BER-bias error model, A-MSDU (whole-aggregate CRC)
        retransmits everything an A-MPDU would only partially lose."""
        model = BerCurveErrorModel()
        results = {}
        for cls in (AmsduProtocol, AmpduProtocol):
            sim = WlanSimulator(cls(DEFAULT_PARAMETERS), 2, self._arrivals(),
                                error_model=model, rng=RngStream(9))
            results[cls.name] = sim.run(1.0)
        assert (results["A-MSDU"].downlink_goodput_bps
                < results["A-MPDU"].downlink_goodput_bps)

    def test_equal_on_perfect_channel(self):
        results = {}
        for cls in (AmsduProtocol, AmpduProtocol):
            sim = WlanSimulator(cls(DEFAULT_PARAMETERS), 2, self._arrivals(),
                                error_model=FixedFerModel(0.0), rng=RngStream(10))
            results[cls.name] = sim.run(1.0)
        assert results["A-MSDU"].downlink_goodput_bps == pytest.approx(
            results["A-MPDU"].downlink_goodput_bps, rel=0.1
        )
