"""MAC recovery paths under injected faults.

Conservation, retry-limit drops, retransmission ordering, and the
sequential-ACK desync/recovery distinction.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.mac import (
    Arrival,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.frames import Direction, MacFrame
from repro.mac.node import Node
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

PERFECT = FixedFerModel(0.0)


def _downlink(t, sta, size=300):
    return Arrival(time=t, source=AP_NAME, destination=sta, size_bytes=size,
                   direction=Direction.DOWNLINK)


def _sim(protocol_cls, arrivals, n=4, seed=3, **kwargs):
    proto = protocol_cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005))
    return WlanSimulator(proto, n, arrivals, error_model=PERFECT,
                         rng=RngStream(seed), **kwargs)


def _queued(sim):
    return sum(len(node.queue) for node in sim.nodes.values())


class TestConservation:
    @pytest.mark.parametrize("protocol_cls", [Dot11Protocol, CarpoolProtocol])
    @pytest.mark.parametrize("ack_loss", [0.0, 0.3])
    def test_offered_equals_delivered_plus_dropped_plus_queued(
            self, protocol_cls, ack_loss):
        arrivals = [_downlink(0.002 * i, f"sta{i % 4}") for i in range(60)]
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=ack_loss))
        sim = _sim(protocol_cls, arrivals, faults=plan)
        sim.run(1.0)
        m = sim.metrics
        assert m.offered_frames == 60
        assert (m.delivered_frames + m.dropped_frames + _queued(sim)
                == m.offered_frames)

    def test_conservation_under_total_ahdr_outage(self):
        """Even when every aggregate dies, no frame is double-counted."""
        arrivals = [_downlink(0.002 * i, f"sta{i % 4}") for i in range(30)]
        plan = FaultPlan.of(FaultSpec.make("ahdr_corruption", probability=1.0,
                                           miss_probability=1.0))
        sim = _sim(CarpoolProtocol, arrivals, faults=plan)
        sim.run(2.0)
        m = sim.metrics
        assert m.delivered_frames == 0
        assert m.dropped_frames + _queued(sim) == m.offered_frames
        assert m.dropped_frames > 0  # retry limit genuinely exhausts


class TestRetryLimit:
    def test_persistent_outage_drops_after_retry_limit(self):
        plan = FaultPlan.of(FaultSpec.make("ahdr_corruption", probability=1.0,
                                           miss_probability=1.0))
        sim = _sim(CarpoolProtocol, [_downlink(0.001, "sta0")], faults=plan)
        summary = sim.run(1.0)
        assert summary.dropped_frames == 1
        assert summary.delivered_downlink_frames == 0
        # Every failed attempt is charged; the drop fires once the retry
        # count exceeds retry_limit, so exactly retry_limit + 1 failures.
        assert (summary.retransmitted_subframes
                == DEFAULT_PARAMETERS.retry_limit + 1)

    def test_ack_loss_does_not_drop_delivered_frames(self):
        """A frame decoded but un-ACKed burns airtime, not goodput: the
        receiver already has it, so it must never count as dropped."""
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=1.0))
        sim = _sim(Dot11Protocol, [_downlink(0.001, "sta0")], faults=plan)
        summary = sim.run(1.0)
        assert summary.delivered_downlink_frames == 1
        assert summary.dropped_frames == 0
        assert summary.retransmitted_subframes >= DEFAULT_PARAMETERS.retry_limit


class TestRetransmissionPriority:
    def test_failed_frames_requeue_ahead_of_fresh_traffic(self):
        node = Node("ap", DEFAULT_PARAMETERS, RngStream(0), is_ap=True)
        fresh = MacFrame(destination="sta0", size_bytes=100, arrival_time=0.0)
        failed = [MacFrame(destination=f"sta{i}", size_bytes=100,
                           arrival_time=0.0, retries=1)
                  for i in range(2)]
        node.enqueue(fresh)
        node.requeue_front(failed)
        assert list(node.queue)[:2] == failed
        assert list(node.queue)[2] == fresh


class TestSequentialAckDesync:
    def _run(self, recovery, seed=12):
        # Keep multi-subframe aggregates flowing so ACK trains exist.
        arrivals = [_downlink(0.004 * burst, f"sta{i}")
                    for burst in range(40) for i in range(4)]
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=0.15))
        sim = _sim(CarpoolProtocol, arrivals, seed=seed, faults=plan,
                   sequential_ack_recovery=recovery)
        summary = sim.run(1.0)
        return summary, sim

    def test_recovery_limits_loss_to_the_gap_subframe(self):
        naive_summary, _ = self._run(recovery=False)
        hardened_summary, _ = self._run(recovery=True)
        # Ordinal matching amplifies one lost ACK into a retransmission of
        # the whole tail of the train; timestamp matching does not.
        assert (hardened_summary.retransmitted_subframes
                < naive_summary.retransmitted_subframes)

    def test_single_subframe_trains_are_immune(self):
        """Desync needs a train; unicast-like aggregates see plain loss."""
        arrivals = [_downlink(0.01 * i, "sta0") for i in range(20)]
        plan = FaultPlan.of(FaultSpec.make("ack_loss", probability=0.5))
        results = []
        for recovery in (False, True):
            sim = _sim(CarpoolProtocol, arrivals, seed=4, faults=plan,
                       sequential_ack_recovery=recovery)
            results.append(sim.run(1.0))
        assert results[0] == results[1]
