import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mac_address import MacAddress
from repro.core.sequential_ack import AckTiming
from repro.mac.frame_formats import (
    AckFrame,
    CtsFrame,
    DataFrame,
    FcsError,
    FrameType,
    RtsFrame,
    decode_duration,
    encode_duration,
    parse_frame,
)
from repro.mac.nav import NavCounter, simulate_ack_train

A = MacAddress.from_int(1)
B = MacAddress.from_int(2)
BSS = MacAddress.from_int(99)
TIMING = AckTiming(ack_duration=44e-6, sifs=10e-6)


class TestDuration:
    def test_round_trip(self):
        for seconds in (0.0, 10e-6, 54e-6, 1e-3):
            assert decode_duration(encode_duration(seconds)) == pytest.approx(
                seconds, abs=1e-6
            )

    def test_rounds_up(self):
        assert encode_duration(10.4e-6) == 11

    def test_bounds(self):
        with pytest.raises(ValueError):
            encode_duration(-1.0)
        with pytest.raises(ValueError):
            encode_duration(0.04)  # 40 ms > 15-bit µs field
        with pytest.raises(ValueError):
            decode_duration(1 << 15)


class TestFrames:
    def test_data_round_trip(self):
        frame = DataFrame(receiver=A, transmitter=B, bssid=BSS,
                          payload=b"hello mac", duration=150e-6, sequence=7)
        raw = frame.to_bytes()
        kind, parsed = parse_frame(raw)
        assert kind == FrameType.DATA
        assert parsed.payload == b"hello mac"
        assert parsed.receiver == A
        assert parsed.sequence == 7
        assert parsed.duration == pytest.approx(150e-6)

    def test_ack_is_14_bytes(self):
        """Table-2-consistent: the simulator charges 14 B per ACK."""
        assert len(AckFrame(receiver=A).to_bytes()) == 14

    def test_rts_is_20_bytes(self):
        assert len(RtsFrame(receiver=A, transmitter=B).to_bytes()) == 20

    def test_cts_is_14_bytes(self):
        assert len(CtsFrame(receiver=A).to_bytes()) == 14

    def test_fcs_detects_corruption(self):
        raw = bytearray(DataFrame(A, B, BSS, b"payload").to_bytes())
        raw[10] ^= 0xFF
        with pytest.raises(FcsError):
            parse_frame(bytes(raw))

    def test_wrong_type_rejected(self):
        raw = AckFrame(receiver=A).to_bytes()
        with pytest.raises(ValueError):
            DataFrame.from_bytes(raw)

    def test_unknown_fc_rejected(self):
        with pytest.raises(ValueError):
            parse_frame(b"\xff\xff" + bytes(10))

    def test_sequence_bounds(self):
        with pytest.raises(ValueError):
            DataFrame(A, B, BSS, b"x", sequence=1 << 12)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=200), st.integers(0, 4095),
           st.floats(min_value=0, max_value=0.03))
    def test_property_round_trip(self, payload, seq, duration):
        frame = DataFrame(A, B, BSS, payload, duration=duration, sequence=seq)
        _, parsed = parse_frame(frame.to_bytes())
        assert parsed.payload == payload
        assert parsed.sequence == seq


class TestNavCounter:
    def test_initially_idle(self):
        assert not NavCounter().busy(0.0)

    def test_reservation_blocks(self):
        nav = NavCounter()
        nav.update(1.0, 0.5)
        assert nav.busy(1.2)
        assert not nav.busy(1.6)

    def test_only_extends_forward(self):
        nav = NavCounter()
        nav.update(0.0, 1.0)
        nav.update(0.1, 0.2)  # shorter reservation must not truncate
        assert nav.idle_at() == pytest.approx(1.0)

    def test_reset(self):
        nav = NavCounter()
        nav.update(0.0, 1.0)
        nav.reset()
        assert not nav.busy(0.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            NavCounter().update(0.0, -1.0)


class TestAckTrain:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_no_overlaps(self, n):
        result = simulate_ack_train(n, payload_duration=500e-6, timing=TIMING)
        assert result.overlaps == 0

    def test_bystander_blocked_through_whole_train(self):
        """The data frame's Eq.-1 NAV keeps third parties silent until the
        last ACK finishes."""
        n = 4
        result = simulate_ack_train(n, payload_duration=500e-6, timing=TIMING)
        last_ack_end = max(e.time for e in result.events if e.kind == "ack-end")
        assert result.bystander_blocked_until >= last_ack_end

    def test_event_count(self):
        result = simulate_ack_train(3, payload_duration=1e-4, timing=TIMING)
        assert sum(e.kind == "ack-start" for e in result.events) == 3
        assert sum(e.kind == "data-start" for e in result.events) == 1
