import pytest

from repro.mac.fairness import FairCarpoolProtocol, TimeOccupancyTable
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream


def _ap():
    return Node("ap", DEFAULT_PARAMETERS, RngStream(0).child("ap"), is_ap=True)


def _frame(dest, t=0.0, size=300):
    return MacFrame(destination=dest, size_bytes=size, arrival_time=t)


class TestTimeOccupancyTable:
    def test_charge_accumulates(self):
        table = TimeOccupancyTable()
        table.charge("sta0", 1e-3)
        table.charge("sta0", 2e-3)
        assert table.occupancy("sta0") == pytest.approx(3e-3)

    def test_unknown_station_zero(self):
        assert TimeOccupancyTable().occupancy("ghost") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeOccupancyTable().charge("sta0", -1.0)

    def test_rank_least_served_first(self):
        table = TimeOccupancyTable()
        table.charge("a", 5e-3)
        table.charge("b", 1e-3)
        assert table.rank({"a", "b", "c"}) == ["c", "b", "a"]

    def test_jain_index(self):
        table = TimeOccupancyTable()
        assert table.jain_index() == 1.0
        table.charge("a", 1.0)
        table.charge("b", 1.0)
        assert table.jain_index() == pytest.approx(1.0)
        table.charge("a", 8.0)
        assert table.jain_index() < 0.8


class TestFairCarpool:
    def _proto(self):
        return FairCarpoolProtocol(
            DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005)
        )

    def test_least_served_goes_first(self):
        proto = self._proto()
        proto.occupancy.charge("sta0", 10e-3)  # heavily served already
        ap = _ap()
        ap.enqueue(_frame("sta0", t=0.0))
        ap.enqueue(_frame("sta1", t=0.1))
        tx = proto.build(ap, 1.0)
        assert [sf.destination for sf in tx.subframes] == ["sta1", "sta0"]

    def test_symbol_positions_follow_new_order(self):
        proto = self._proto()
        proto.occupancy.charge("sta0", 10e-3)
        ap = _ap()
        ap.enqueue(_frame("sta0", t=0.0, size=1000))
        ap.enqueue(_frame("sta1", t=0.1, size=200))
        tx = proto.build(ap, 1.0)
        starts = [sf.start_symbol for sf in tx.subframes]
        assert starts == sorted(starts)
        assert tx.subframes[0].destination == "sta1"

    def test_served_airtime_charged(self):
        proto = self._proto()
        ap = _ap()
        ap.enqueue(_frame("sta0"))
        proto.build(ap, 1.0)
        assert proto.occupancy.occupancy("sta0") > 0

    def test_rotation_evens_out_service(self):
        """Serving rounds under the fair policy keeps Jain's index high
        even when one station has far more traffic queued first."""
        proto = self._proto()
        ap = _ap()
        limits_receivers = 8
        for round_ in range(20):
            for i in range(10):
                ap.enqueue(_frame(f"sta{i}", t=round_ * 0.01 + i * 1e-4))
            while ap.queue:
                proto.build(ap, 10.0)
        assert proto.occupancy.jain_index() > 0.95

    def test_uplink_unaffected(self):
        proto = self._proto()
        sta = Node("sta0", DEFAULT_PARAMETERS, RngStream(1).child("s"), is_ap=False)
        sta.enqueue(_frame("ap"))
        tx = proto.build(sta, 0.0)
        assert len(tx.subframes) == 1
