"""Structural invariants every protocol's transmissions must satisfy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols import (
    AggregationLimits,
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    WifoxProtocol,
)
from repro.mac.protocols.amsdu import AmsduProtocol
from repro.util.rng import RngStream

ALL_PROTOCOLS = (Dot11Protocol, AmpduProtocol, AmsduProtocol,
                 MuAggregationProtocol, WifoxProtocol, CarpoolProtocol)


def _loaded_ap(frames_spec, seed=0):
    node = Node("ap", DEFAULT_PARAMETERS, RngStream(seed).child("ap"), is_ap=True)
    for i, (dest, size) in enumerate(frames_spec):
        node.enqueue(MacFrame(destination=f"sta{dest}", size_bytes=size,
                              arrival_time=0.001 * i))
    return node


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 9), st.integers(1, 2000)),
             min_size=1, max_size=30),
    st.integers(0, len(ALL_PROTOCOLS) - 1),
)
def test_transmission_invariants(frames_spec, protocol_idx):
    """For any workload and any protocol:

    * the transmission is non-empty and consumes frames from the queue,
    * no frame is lost or duplicated between queue and transmission,
    * subframe symbol spans are disjoint and ordered,
    * airtime is positive and at least the PLCP header,
    * the ACK tail is positive.
    """
    protocol = ALL_PROTOCOLS[protocol_idx](
        DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005)
    )
    node = _loaded_ap(frames_spec)
    before_ids = {f.frame_id for f in node.queue}
    transmission = protocol.build(node, 1.0)

    taken = [f for sf in transmission.subframes for f in sf.frames]
    taken_ids = {f.frame_id for f in taken}
    left_ids = {f.frame_id for f in node.queue}

    assert transmission.subframes, "a backlogged AP always sends something"
    assert len(taken) == len(taken_ids), "no duplicated frames"
    assert taken_ids | left_ids == before_ids
    assert not taken_ids & left_ids

    spans = sorted(
        (sf.start_symbol, sf.start_symbol + sf.n_symbols)
        for sf in transmission.subframes
    )
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, "subframe symbol spans must not overlap"
    assert all(sf.n_symbols >= 1 for sf in transmission.subframes)

    assert transmission.airtime >= DEFAULT_PARAMETERS.plcp_header_time
    assert transmission.ack_time > 0
    assert transmission.total_duration == pytest.approx(
        transmission.airtime + transmission.ack_time
    )


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 1500)),
                min_size=1, max_size=40))
def test_repeated_builds_drain_queue(frames_spec):
    """Calling build until empty always terminates and ships every frame
    exactly once (no starvation, no loops), for the multi-receiver scheme."""
    protocol = CarpoolProtocol(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005))
    node = _loaded_ap(frames_spec, seed=1)
    all_ids = {f.frame_id for f in node.queue}
    shipped = []
    for _ in range(len(frames_spec) + 5):
        if not node.queue:
            break
        transmission = protocol.build(node, 1.0)
        shipped.extend(f.frame_id for sf in transmission.subframes for f in sf.frames)
    assert not node.queue
    assert sorted(shipped) == sorted(all_ids)
