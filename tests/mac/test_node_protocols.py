import pytest

from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols import (
    AggregationLimits,
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    PROTOCOLS,
    WifoxProtocol,
)
from repro.util.rng import RngStream


def _node(name="ap", is_ap=True, seed=0):
    return Node(name, DEFAULT_PARAMETERS, RngStream(seed).child(name), is_ap=is_ap)


def _frame(dest, size=300, t=0.0, sensitive=False):
    return MacFrame(destination=dest, size_bytes=size, arrival_time=t,
                    delay_sensitive=sensitive)


class TestNode:
    def test_backoff_within_cw(self):
        node = _node()
        for _ in range(50):
            node.backoff_slots = None
            assert 0 <= node.ensure_backoff() <= node.cw

    def test_backoff_persists_until_reset(self):
        node = _node()
        b = node.ensure_backoff()
        assert node.ensure_backoff() == b

    def test_collision_doubles_cw(self):
        node = _node()
        cw0 = node.cw
        node.on_collision()
        assert node.cw == 2 * cw0 + 1

    def test_cw_capped_at_max(self):
        node = _node()
        for _ in range(20):
            node.on_collision()
        assert node.cw == DEFAULT_PARAMETERS.cw_max

    def test_success_resets_cw(self):
        node = _node()
        node.on_collision()
        node.on_success()
        assert node.cw == DEFAULT_PARAMETERS.cw_min

    def test_consume_slots(self):
        node = _node()
        node.backoff_slots = 5
        node.consume_slots(3)
        assert node.backoff_slots == 2
        with pytest.raises(ValueError):
            node.consume_slots(10)

    def test_consume_without_draw_raises(self):
        with pytest.raises(RuntimeError):
            _node().consume_slots(1)

    def test_priority_scale(self):
        node = _node()
        node.set_priority_scale(0.25)
        assert node.cw == max(1, int(DEFAULT_PARAMETERS.cw_min * 0.25))
        with pytest.raises(ValueError):
            node.set_priority_scale(0.0)

    def test_requeue_front_preserves_order(self):
        node = _node()
        node.enqueue(_frame("a"))
        f1, f2 = _frame("b"), _frame("c")
        node.requeue_front([f1, f2])
        assert [f.destination for f in node.queue] == ["b", "c", "a"]


class TestDot11:
    def test_one_frame_per_access(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS)
        node = _node()
        node.enqueue(_frame("sta0"))
        node.enqueue(_frame("sta1"))
        tx = proto.build(node, 0.0)
        assert len(tx.subframes) == 1
        assert len(node.queue) == 1
        assert not tx.subframes[0].rte


class TestAmpdu:
    def test_aggregates_only_head_destination(self):
        proto = AmpduProtocol(DEFAULT_PARAMETERS)
        node = _node()
        node.enqueue(_frame("sta0", t=0.0))
        node.enqueue(_frame("sta1", t=0.1))
        node.enqueue(_frame("sta0", t=0.2))
        tx = proto.build(node, 1.0)
        assert all(sf.destination == "sta0" for sf in tx.subframes)
        assert len(tx.subframes) == 2  # two MPDUs for sta0
        assert [f.destination for f in node.queue] == ["sta1"]

    def test_blockack_window_cap(self):
        proto = AmpduProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for _ in range(80):
            node.enqueue(_frame("sta0", size=120))
        tx = proto.build(node, 0.0)
        assert len(tx.subframes) == 64
        assert len(node.queue) == 16

    def test_mpdu_positions_monotone(self):
        proto = AmpduProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for _ in range(5):
            node.enqueue(_frame("sta0"))
        tx = proto.build(node, 0.0)
        starts = [sf.start_symbol for sf in tx.subframes]
        assert starts == sorted(starts)
        assert starts[0] == 0

    def test_sta_sends_single_frames(self):
        proto = AmpduProtocol(DEFAULT_PARAMETERS)
        sta = _node("sta0", is_ap=False)
        sta.enqueue(_frame("ap"))
        sta.enqueue(_frame("ap"))
        tx = proto.build(sta, 0.0)
        assert len(tx.subframes) == 1


class TestCarpool:
    def test_multi_receiver_aggregation(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(12):
            node.enqueue(_frame(f"sta{i % 4}", t=i * 0.001))
        tx = proto.build(node, 1.0)
        assert len(tx.subframes) == 4
        assert all(sf.rte for sf in tx.subframes)
        assert len(node.queue) == 0

    def test_receiver_cap_eight(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(12):
            node.enqueue(_frame(f"sta{i}", t=i * 0.001))
        tx = proto.build(node, 1.0)
        assert len(tx.subframes) == 8
        assert len(node.queue) == 4

    def test_subframe_byte_cap(self):
        limits = AggregationLimits(max_subframe_bytes=500)
        proto = CarpoolProtocol(DEFAULT_PARAMETERS, limits)
        node = _node()
        for _ in range(4):
            node.enqueue(_frame("sta0", size=300))
        tx = proto.build(node, 0.0)
        assert tx.subframes[0].payload_bytes == 300
        assert len(node.queue) == 3

    def test_header_and_sig_symbols_accounted(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        node = _node()
        node.enqueue(_frame("sta0"))
        node.enqueue(_frame("sta1", t=0.001))
        tx = proto.build(node, 1.0)
        # First subframe starts after A-HDR (2) + its SIG (1).
        assert tx.subframes[0].start_symbol == 3
        gap = tx.subframes[1].start_symbol - (
            tx.subframes[0].start_symbol + tx.subframes[0].n_symbols
        )
        assert gap == 1  # the second subframe's SIG

    def test_sequential_ack_time_scales(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(4):
            node.enqueue(_frame(f"sta{i}", t=i * 0.001))
        tx = proto.build(node, 1.0)
        single = Dot11Protocol(DEFAULT_PARAMETERS)
        node2 = _node()
        node2.enqueue(_frame("sta0"))
        tx_single = single.build(node2, 0.0)
        assert tx.ack_time == pytest.approx(4 * tx_single.ack_time)

    def test_delay_sensitive_first(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS, AggregationLimits(max_receivers=1))
        node = _node()
        node.enqueue(_frame("sta0", t=0.0))
        node.enqueue(_frame("sta1", t=0.5, sensitive=True))
        tx = proto.build(node, 1.0)
        assert tx.subframes[0].destination == "sta1"

    def test_ready_waits_for_aggregation(self):
        proto = CarpoolProtocol(
            DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.010)
        )
        node = _node()
        node.enqueue(_frame("sta0", t=1.0))
        assert proto.ready_time(node, 1.001) == pytest.approx(1.010)

    def test_ready_immediately_when_full(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(8):
            node.enqueue(_frame(f"sta{i}", t=1.0))
        assert proto.ready_time(node, 1.0) == 1.0

    def test_empty_queue_not_ready(self):
        proto = CarpoolProtocol(DEFAULT_PARAMETERS)
        assert proto.ready_time(_node(), 0.0) is None


class TestMuAggregation:
    def test_no_rte(self):
        proto = MuAggregationProtocol(DEFAULT_PARAMETERS)
        node = _node()
        node.enqueue(_frame("sta0"))
        tx = proto.build(node, 1.0)
        assert not tx.subframes[0].rte

    def test_shared_blockack_window(self):
        proto = MuAggregationProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(100):
            node.enqueue(_frame(f"sta{i % 4}", size=120, t=i * 1e-4))
        tx = proto.build(node, 1.0)
        assert sum(len(sf.frames) for sf in tx.subframes) == 64

    def test_per_subframe_header_bytes_counted(self):
        proto = MuAggregationProtocol(DEFAULT_PARAMETERS)
        carpool = CarpoolProtocol(DEFAULT_PARAMETERS)
        n1, n2 = _node(), _node()
        n1.enqueue(_frame("sta0", size=100))
        n2.enqueue(_frame("sta0", size=100))
        tx_mu = proto.build(n1, 0.0)
        tx_cp = carpool.build(n2, 0.0)
        assert tx_mu.subframes[0].n_symbols >= tx_cp.subframes[0].n_symbols


class TestWifox:
    def test_is_non_aggregating(self):
        proto = WifoxProtocol(DEFAULT_PARAMETERS)
        node = _node()
        node.enqueue(_frame("sta0"))
        node.enqueue(_frame("sta1"))
        tx = proto.build(node, 0.0)
        assert len(tx.subframes) == 1

    def test_priority_kicks_in_with_backlog(self):
        proto = WifoxProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(50):
            node.enqueue(_frame(f"sta{i % 5}"))
        proto.ready_time(node, 0.0)
        assert node.cw_scale < 1.0

    def test_priority_released_when_drained(self):
        proto = WifoxProtocol(DEFAULT_PARAMETERS)
        node = _node()
        for i in range(50):
            node.enqueue(_frame("sta0"))
        proto.ready_time(node, 0.0)
        node.queue.clear()
        node.enqueue(_frame("sta0"))
        proto.ready_time(node, 0.0)
        assert node.cw_scale == 1.0

    def test_stas_get_no_priority(self):
        proto = WifoxProtocol(DEFAULT_PARAMETERS)
        sta = _node("sta0", is_ap=False)
        for _ in range(50):
            sta.enqueue(_frame("ap"))
        proto.ready_time(sta, 0.0)
        assert sta.cw_scale == 1.0


class TestRegistry:
    def test_all_schemes_registered(self):
        assert set(PROTOCOLS) == {
            "802.11", "A-MPDU", "A-MSDU", "MU-Aggregation", "WiFox", "Carpool",
            "Carpool-fallback",
        }
