"""The batched draw path is a pure optimisation: metrics must be identical.

``WlanSimulator.simulate_batch`` pre-draws subframe outcomes in blocks
from the same ``errors`` child stream the scalar path consumes one
uniform at a time. These tests pin the contract: for ANY scenario,
protocol, seed, and fault plan, batched and scalar runs produce the same
``ScenarioResult`` float for float (not merely statistically equivalent).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec
from repro.mac import PROTOCOLS
from repro.mac.scenarios import CbrScenario, VoipScenario


def _paired_results(scenario, protocol_cls):
    scalar = dataclasses.replace(scenario, batched=False).run(protocol_cls)
    batched = dataclasses.replace(scenario, batched=True).run(protocol_cls)
    return scalar, batched


class TestBatchedScalarParity:
    @settings(max_examples=10, deadline=None)
    @given(
        protocol=st.sampled_from(sorted(PROTOCOLS)),
        stations=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
        uplink=st.booleans(),
    )
    def test_voip_scenarios(self, protocol, stations, seed, uplink):
        scenario = VoipScenario(
            num_stations=stations, num_aps=1, duration=0.5, seed=seed,
            include_uplink=uplink,
        )
        scalar, batched = _paired_results(scenario, PROTOCOLS[protocol])
        assert scalar == batched

    @settings(max_examples=8, deadline=None)
    @given(
        protocol=st.sampled_from(["Carpool", "802.11", "MU-Aggregation"]),
        stations=st.integers(1, 5),
        frame_bytes=st.integers(64, 4095),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_cbr_scenarios(self, protocol, stations, frame_bytes, seed):
        scenario = CbrScenario(
            num_stations=stations, num_aps=1, duration=0.5, seed=seed,
            frame_bytes=frame_bytes, with_background=False,
        )
        scalar, batched = _paired_results(scenario, PROTOCOLS[protocol])
        assert scalar == batched

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        probability=st.floats(0.05, 0.9),
        kind=st.sampled_from(["ack_loss", "mac_burst", "ahdr_corruption"]),
    )
    def test_fault_plans(self, seed, probability, kind):
        # Faults draw from their own child stream; batching the error
        # draws must not shift the fault draws (or vice versa).
        plan = FaultPlan(specs=(
            FaultSpec(kind=kind, start=0.0, stop=5.0, probability=probability),
        ))
        scenario = VoipScenario(
            num_stations=3, num_aps=1, duration=0.5, seed=seed,
            fault_plan=plan,
        )
        scalar, batched = _paired_results(scenario, PROTOCOLS["Carpool"])
        assert scalar == batched

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), stations=st.integers(1, 5))
    def test_fallback_protocol_with_ahdr_faults(self, seed, stations):
        # Carpool-fallback switches modes off decode failures, so any
        # drift in draw order would change its whole trajectory.
        plan = FaultPlan(specs=(
            FaultSpec(kind="ahdr_corruption", start=0.0, stop=5.0,
                      probability=0.5),
        ))
        scenario = VoipScenario(
            num_stations=stations, num_aps=1, duration=0.5, seed=seed,
            fault_plan=plan,
        )
        scalar, batched = _paired_results(
            scenario, PROTOCOLS["Carpool-fallback"]
        )
        assert scalar == batched

    def test_simulate_batch_equals_run(self):
        from repro.mac.engine import WlanSimulator
        from repro.mac.parameters import DEFAULT_PARAMETERS
        from repro.traffic.flows import merge_arrivals
        from repro.traffic.voip import voip_downlink_arrivals
        from repro.util.rng import RngStream

        def build(batched):
            arrivals = voip_downlink_arrivals(
                ["sta0", "sta1"], 1.0, RngStream(5).child("down"))
            return WlanSimulator(
                PROTOCOLS["Carpool"](DEFAULT_PARAMETERS),
                num_stations=2,
                arrivals=merge_arrivals(arrivals),
                rng=RngStream(5).child("sim"),
                station_names=["sta0", "sta1"],
                batched=batched,
            )

        scalar_sim = build(False)
        scalar = scalar_sim.run(1.0)
        batched_sim = build(True)
        batched = batched_sim.simulate_batch(1.0)
        assert scalar == batched
        assert scalar_sim.metrics.goodput_of_source("ap", 1.0) == \
            batched_sim.metrics.goodput_of_source("ap", 1.0)


@pytest.mark.slow
def test_sweep_batched_cached_parity():
    """The full sweep path: batched+cached == scalar+uncached, cell by cell."""
    import dataclasses as dc

    from repro.analysis.calibration import clear_calibration_cache
    from repro.mac.sweep import SweepConfig, goodput_airtime_sweep

    fast = SweepConfig(
        receiver_counts=(2, 4), payload_bytes=(256, 1024), trials=2,
        duration=0.3, calibration_payload=400, calibration_trials=2,
        batched=True, cache=True,
    )
    slow = dc.replace(fast, batched=False, cache=False)
    clear_calibration_cache()
    slow_cells = goodput_airtime_sweep(slow)
    fast_cells = goodput_airtime_sweep(fast)
    assert [c.per_trial_goodput for c in slow_cells] == \
        [c.per_trial_goodput for c in fast_cells]
    assert [c.goodput_bps for c in slow_cells] == \
        [c.goodput_bps for c in fast_cells]
    clear_calibration_cache()
