"""Per-station rate adaptation inside the MAC protocols."""

import pytest

from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols import AmpduProtocol, CarpoolProtocol, Dot11Protocol
from repro.mac.protocols.base import AggregationLimits
from repro.mac.rate_control import RateTable
from repro.util.rng import RngStream


def _ap():
    return Node("ap", DEFAULT_PARAMETERS, RngStream(0).child("ap"), is_ap=True)


def _frame(dest, size=600, t=0.0):
    return MacFrame(destination=dest, size_bytes=size, arrival_time=t)


def _table():
    table = RateTable()
    table.report_snr("near", 35.0)  # top MCS
    table.report_snr("far", 6.0)  # basic rate
    return table


class TestRateForDestination:
    def test_no_table_uses_default(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS)
        assert proto.rate_for("anyone") == DEFAULT_PARAMETERS.phy_rate_bps

    def test_top_mcs_equals_configured_rate(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS, rate_table=_table())
        assert proto.rate_for("near") == pytest.approx(
            DEFAULT_PARAMETERS.phy_rate_bps, rel=1e-9
        )

    def test_far_station_much_slower(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS, rate_table=_table())
        assert proto.rate_for("far") == pytest.approx(
            DEFAULT_PARAMETERS.phy_rate_bps * 6.0 / 54.0
        )

    def test_unreported_station_uses_default(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS, rate_table=_table())
        assert proto.rate_for("ghost") == DEFAULT_PARAMETERS.phy_rate_bps


class TestAirtimeScaling:
    def test_far_station_needs_more_symbols(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS, rate_table=_table())
        near = proto.payload_symbols(600, "near")
        far = proto.payload_symbols(600, "far")
        assert far == pytest.approx(9 * near, rel=0.25)

    def test_single_frame_airtime_scales(self):
        proto = Dot11Protocol(DEFAULT_PARAMETERS, rate_table=_table())
        ap_near, ap_far = _ap(), _ap()
        ap_near.enqueue(_frame("near"))
        ap_far.enqueue(_frame("far"))
        tx_near = proto.build(ap_near, 0.0)
        tx_far = proto.build(ap_far, 0.0)
        assert tx_far.airtime > 3 * tx_near.airtime

    def test_carpool_mixes_rates_in_one_frame(self):
        proto = CarpoolProtocol(
            DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005),
            rate_table=_table(),
        )
        ap = _ap()
        ap.enqueue(_frame("near", t=0.0))
        ap.enqueue(_frame("far", t=0.001))
        tx = proto.build(ap, 1.0)
        by_dest = {sf.destination: sf.n_symbols for sf in tx.subframes}
        assert by_dest["far"] > 3 * by_dest["near"]

    def test_ampdu_uses_destination_rate(self):
        proto = AmpduProtocol(DEFAULT_PARAMETERS, rate_table=_table())
        ap = _ap()
        ap.enqueue(_frame("far"))
        ap.enqueue(_frame("far"))
        tx = proto.build(ap, 0.0)
        slow = sum(sf.n_symbols for sf in tx.subframes)

        proto2 = AmpduProtocol(DEFAULT_PARAMETERS, rate_table=_table())
        ap2 = _ap()
        ap2.enqueue(_frame("near"))
        ap2.enqueue(_frame("near"))
        fast = sum(sf.n_symbols for sf in proto2.build(ap2, 0.0).subframes)
        assert slow > 3 * fast
