import pytest

from repro.analysis.testbed import NUM_LOCATIONS, OfficeTestbed
from repro.mac.rate_control import SNR_THRESHOLDS_DB, RateTable, select_mcs
from repro.phy.mcs import MCS_TABLE


class TestSelectMcs:
    def test_high_snr_gets_top_rate(self):
        assert select_mcs(40.0).rate_mbps == 54

    def test_low_snr_gets_basic_rate(self):
        assert select_mcs(-5.0).rate_mbps == 6

    def test_monotone_in_snr(self):
        rates = [select_mcs(snr).rate_mbps for snr in range(0, 40, 2)]
        assert rates == sorted(rates)

    def test_margin_backs_off(self):
        snr = SNR_THRESHOLDS_DB["QAM64-3/4"] + 1.0
        assert select_mcs(snr).rate_mbps == 54
        assert select_mcs(snr, margin_db=3.0).rate_mbps < 54

    def test_thresholds_cover_all_mcs(self):
        assert set(SNR_THRESHOLDS_DB) == {m.name for m in MCS_TABLE}

    def test_thresholds_increase_with_rate(self):
        thresholds = [SNR_THRESHOLDS_DB[m.name] for m in MCS_TABLE]
        assert thresholds == sorted(thresholds)


class TestRateTable:
    def test_unknown_station_basic_rate(self):
        assert RateTable().mcs_for("sta0").rate_mbps == 6

    def test_report_then_lookup(self):
        table = RateTable()
        table.report_snr("sta0", 30.0)
        assert table.mcs_for("sta0").rate_mbps >= 48

    def test_smoothing(self):
        table = RateTable()
        table.report_snr("sta0", 30.0)
        table.report_snr("sta0", 10.0, smoothing=0.5)
        assert table.snr_of("sta0") == pytest.approx(20.0)

    def test_invalid_smoothing(self):
        table = RateTable()
        with pytest.raises(ValueError):
            table.report_snr("sta0", 20.0, smoothing=0.0)

    def test_rate_map(self):
        table = RateTable()
        table.report_snr("near", 35.0)
        table.report_snr("far", 8.0)
        rates = table.rate_map()
        assert rates["near"].rate_mbps > rates["far"].rate_mbps


class TestOfficeTestbed:
    def test_thirty_locations(self):
        testbed = OfficeTestbed()
        assert len(testbed.locations) == NUM_LOCATIONS

    def test_locations_inside_room(self):
        testbed = OfficeTestbed()
        for loc in testbed.locations:
            assert 0.0 <= loc.x <= 10.0
            assert 0.0 <= loc.y <= 10.0

    def test_no_location_on_transmitter(self):
        testbed = OfficeTestbed()
        assert testbed.distances().min() >= 0.5

    def test_snr_decreases_with_distance(self):
        testbed = OfficeTestbed()
        near = min(testbed.locations, key=testbed.distance)
        far = max(testbed.locations, key=testbed.distance)
        assert testbed.snr_db(near) > testbed.snr_db(far)

    def test_snr_map_complete(self):
        assert len(OfficeTestbed().snr_map()) == NUM_LOCATIONS

    def test_deterministic_per_seed(self):
        a = OfficeTestbed(seed=3).distances()
        b = OfficeTestbed(seed=3).distances()
        assert (a == b).all()

    def test_rates_vary_across_room(self):
        """The testbed's geometry exercises several MCS levels — the reason
        Carpool lets every subframe pick its own rate."""
        testbed = OfficeTestbed()
        table = RateTable()
        for loc in testbed.locations:
            table.report_snr(f"loc{loc.index}", testbed.snr_db(loc))
        rates = {m.rate_mbps for m in table.rate_map().values()}
        assert len(rates) >= 2
