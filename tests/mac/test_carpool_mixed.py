import pytest

from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols.base import AggregationLimits
from repro.mac.protocols.carpool_mixed import CarpoolMixedProtocol
from repro.util.rng import RngStream


def _ap():
    return Node("ap", DEFAULT_PARAMETERS, RngStream(0).child("ap"), is_ap=True)


def _frame(dest, t=0.0, size=300, sensitive=False):
    return MacFrame(destination=dest, size_bytes=size, arrival_time=t,
                    delay_sensitive=sensitive)


CAPABLE = {"sta0", "sta1", "sta2"}


def _proto(**kwargs):
    return CarpoolMixedProtocol(
        DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.01),
        carpool_stations=CAPABLE, **kwargs,
    )


class TestMixedProtocol:
    def test_legacy_head_gets_single_frame(self):
        proto = _proto()
        ap = _ap()
        ap.enqueue(_frame("legacy9", t=0.0))
        ap.enqueue(_frame("sta0", t=0.1))
        ap.enqueue(_frame("sta1", t=0.2))
        tx = proto.build(ap, 1.0)
        assert len(tx.subframes) == 1
        assert tx.subframes[0].destination == "legacy9"
        assert not tx.subframes[0].rte
        assert len(ap.queue) == 2

    def test_carpool_head_aggregates_capable_only(self):
        proto = _proto()
        ap = _ap()
        ap.enqueue(_frame("sta0", t=0.0))
        ap.enqueue(_frame("legacy9", t=0.1))
        ap.enqueue(_frame("sta1", t=0.2))
        tx = proto.build(ap, 1.0)
        destinations = {sf.destination for sf in tx.subframes}
        assert destinations == {"sta0", "sta1"}
        assert all(sf.rte for sf in tx.subframes)
        # The legacy frame is still queued for the next access.
        assert [f.destination for f in ap.queue] == ["legacy9"]

    def test_legacy_never_waits_for_aggregation(self):
        proto = _proto()
        ap = _ap()
        ap.enqueue(_frame("legacy9", t=5.0))
        assert proto.ready_time(ap, 5.0) == 5.0

    def test_carpool_backlog_waits(self):
        proto = _proto()
        ap = _ap()
        ap.enqueue(_frame("sta0", t=5.0))
        assert proto.ready_time(ap, 5.0) == pytest.approx(5.01)

    def test_sta_uplink_unchanged(self):
        proto = _proto()
        sta = Node("sta0", DEFAULT_PARAMETERS, RngStream(1).child("s"), is_ap=False)
        sta.enqueue(_frame("ap"))
        tx = proto.build(sta, 0.0)
        assert len(tx.subframes) == 1

    def test_alternates_between_populations(self):
        """Legacy and Carpool backlogs both drain: serving one never
        starves the other indefinitely."""
        proto = _proto()
        ap = _ap()
        for i in range(3):
            ap.enqueue(_frame("legacy9", t=0.1 * i))
            ap.enqueue(_frame(f"sta{i}", t=0.1 * i + 0.05))
        served = []
        now = 10.0
        while ap.queue:
            tx = proto.build(ap, now)
            served.append({sf.destination for sf in tx.subframes})
            now += 0.001
        assert {"legacy9"} in served
        assert any("sta0" in group for group in served)
        assert not ap.queue
