import numpy as np
import pytest

from repro.phy.mcs import BASIC_MCS, MCS_TABLE, mcs_by_name, mcs_by_rate_bits
from repro.phy.sig import SigDecodeError, SigField, decode_sig, encode_sig


class TestMcsTable:
    def test_eight_rates(self):
        assert len(MCS_TABLE) == 8
        assert [m.rate_mbps for m in MCS_TABLE] == [6, 9, 12, 18, 24, 36, 48, 54]

    def test_data_bits_per_symbol(self):
        expected = {6: 24, 9: 36, 12: 48, 18: 72, 24: 96, 36: 144, 48: 192, 54: 216}
        for mcs in MCS_TABLE:
            assert mcs.data_bits_per_symbol == expected[mcs.rate_mbps]

    def test_rate_consistency(self):
        """N_DBPS per 4 µs symbol must equal the nominal rate."""
        for mcs in MCS_TABLE:
            assert mcs.data_bits_per_symbol / 4e-6 == pytest.approx(mcs.rate_mbps * 1e6)

    def test_rate_bits_unique_and_resolvable(self):
        assert len({m.rate_bits for m in MCS_TABLE}) == 8
        for mcs in MCS_TABLE:
            assert mcs_by_rate_bits(mcs.rate_bits) is mcs

    def test_basic_is_bpsk_half(self):
        assert BASIC_MCS.name == "BPSK-1/2"

    def test_lookup_by_name(self):
        assert mcs_by_name("QAM64-3/4").rate_mbps == 54

    def test_bad_lookups_raise(self):
        with pytest.raises(KeyError):
            mcs_by_rate_bits(0b0000)
        with pytest.raises(KeyError):
            mcs_by_name("QAM128-7/8")


class TestSig:
    @pytest.mark.parametrize("mcs", MCS_TABLE, ids=lambda m: m.name)
    @pytest.mark.parametrize("length", [1, 300, 1500, 4095])
    def test_round_trip(self, mcs, length):
        points = encode_sig(SigField(mcs=mcs, length_bytes=length))
        assert points.size == 48
        decoded = decode_sig(points)
        assert decoded.mcs is mcs
        assert decoded.length_bytes == length

    def test_invalid_length_rejected_at_build(self):
        with pytest.raises(ValueError):
            SigField(mcs=BASIC_MCS, length_bytes=0)
        with pytest.raises(ValueError):
            SigField(mcs=BASIC_MCS, length_bytes=4096)

    def test_survives_noise(self):
        rng = np.random.default_rng(0)
        points = encode_sig(SigField(mcs=BASIC_MCS, length_bytes=1200))
        noisy = points + 0.25 * (rng.normal(size=48) + 1j * rng.normal(size=48))
        assert decode_sig(noisy).length_bytes == 1200

    def test_garbage_raises(self):
        rng = np.random.default_rng(1)
        fails = 0
        for _ in range(20):
            garbage = rng.normal(size=48) + 1j * rng.normal(size=48)
            try:
                decode_sig(garbage)
            except SigDecodeError:
                fails += 1
        # Parity + RATE validity reject the bulk of random symbols.
        assert fails >= 10
