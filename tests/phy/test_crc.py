import binascii

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.crc import crc1_bits, crc2_bits, crc8_bits, crc32, crc32_bits
from repro.util.bits import bytes_to_bits


class TestCrc32:
    @given(st.binary(min_size=0, max_size=64))
    def test_matches_zlib(self, data):
        assert crc32(data) == binascii.crc32(data)

    def test_known_vector(self):
        # The classic check value for "123456789".
        assert crc32(b"123456789") == 0xCBF43926

    def test_detects_single_bit_flip(self):
        data = bytes(range(32))
        bits = bytes_to_bits(data)
        reference = crc32_bits(bits)
        for pos in (0, 100, bits.size - 1):
            flipped = bits.copy()
            flipped[pos] ^= 1
            assert crc32_bits(flipped) != reference


class TestSmallCrcs:
    def test_crc1_is_parity(self):
        assert crc1_bits(np.array([1, 1, 0], dtype=np.uint8)) == 0
        assert crc1_bits(np.array([1, 0, 0], dtype=np.uint8)) == 1

    def test_crc2_range(self):
        rng = np.random.default_rng(0)
        values = {crc2_bits(rng.integers(0, 2, 100, dtype=np.uint8)) for _ in range(50)}
        assert values <= {0, 1, 2, 3}
        assert len(values) > 1

    def test_crc2_detects_all_single_bit_errors(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 64, dtype=np.uint8)
        ref = crc2_bits(bits)
        for pos in range(bits.size):
            flipped = bits.copy()
            flipped[pos] ^= 1
            assert crc2_bits(flipped) != ref, f"missed flip at {pos}"

    def test_crc8_detects_all_single_bit_errors(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 128, dtype=np.uint8)
        ref = crc8_bits(bits)
        for pos in range(bits.size):
            flipped = bits.copy()
            flipped[pos] ^= 1
            assert crc8_bits(flipped) != ref

    def test_crc2_random_error_miss_rate_near_quarter(self):
        """A 2-bit CRC passes a random corruption with probability ≈ 1/4."""
        rng = np.random.default_rng(3)
        misses = 0
        trials = 2000
        for _ in range(trials):
            bits = rng.integers(0, 2, 48, dtype=np.uint8)
            corrupted = rng.integers(0, 2, 48, dtype=np.uint8)
            if np.array_equal(bits, corrupted):
                continue
            if crc2_bits(bits) == crc2_bits(corrupted):
                misses += 1
        assert misses / trials == pytest.approx(0.25, abs=0.05)
