import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.phy import PhyReceiver, PhyTransmitter, mcs_by_name
from repro.phy.cfo import phase_step_from_cfo
from repro.phy.frontend import acquire
from repro.phy.sig import SigDecodeError
from repro.util.rng import RngStream

STATIC = FadingProfile(coherence_time=float("inf"))


def _run_link(payload, mcs_name, snr_db, coded=True, seed=0, **channel_kwargs):
    mcs = mcs_by_name(mcs_name)
    tx = PhyTransmitter(mcs, coded=coded)
    frame = tx.build_frame(payload)
    channel = ChannelModel(snr_db=snr_db, rng=RngStream(seed), **channel_kwargs)
    rx = PhyReceiver(coded=coded).receive(channel.transmit(frame.symbols))
    return frame, rx


class TestIdealChannel:
    """Noise-free, flat channel: everything must decode perfectly."""

    def _ideal(self, mcs_name, payload, coded):
        mcs = mcs_by_name(mcs_name)
        frame = PhyTransmitter(mcs, coded=coded).build_frame(payload)
        rx = PhyReceiver(coded=coded).receive(frame.symbols)
        return frame, rx

    @pytest.mark.parametrize("mcs_name", ["BPSK-1/2", "QPSK-3/4", "QAM16-1/2", "QAM64-3/4"])
    @pytest.mark.parametrize("coded", [True, False])
    def test_loopback(self, mcs_name, coded):
        payload = bytes(range(200))
        frame, rx = self._ideal(mcs_name, payload, coded)
        assert rx.payload == payload
        assert rx.sig.length_bytes == len(payload)
        np.testing.assert_array_equal(rx.bit_matrix, frame.payload_bit_matrix)

    def test_loopback_phases_near_zero(self):
        _, rx = self._ideal("QPSK-1/2", b"hello world " * 10, True)
        assert np.max(np.abs(rx.symbol_phases)) < 1e-6


class TestNoisyChannel:
    def test_high_snr_static_bpsk_error_free(self):
        payload = bytes(np.random.default_rng(1).integers(0, 256, 500, dtype=np.uint8))
        _, rx = _run_link(payload, "BPSK-1/2", 25, profile=STATIC)
        assert rx.payload == payload

    def test_cfo_estimated(self):
        payload = b"x" * 100
        _, rx = _run_link(payload, "BPSK-1/2", 35, profile=STATIC, cfo_hz=5000.0)
        assert rx.cfo_hz == pytest.approx(5000.0, abs=500.0)
        assert rx.payload == payload

    def test_large_cfo_survivable(self):
        payload = b"y" * 200
        _, rx = _run_link(payload, "QPSK-1/2", 30, profile=STATIC, cfo_hz=40e3)
        assert rx.payload == payload

    def test_low_snr_corrupts(self):
        payload = bytes(np.random.default_rng(2).integers(0, 256, 500, dtype=np.uint8))
        frame, rx = _run_link(payload, "QAM64-3/4", 5, coded=False, profile=STATIC)
        raw_ber = (rx.bit_matrix != frame.payload_bit_matrix).mean()
        assert raw_ber > 0.05


class TestBerBias:
    def test_tail_symbols_worse_than_head(self):
        """The Fig. 3 phenomenon: preamble-only estimation rots over a long
        frame on a time-varying channel."""
        rng = np.random.default_rng(3)
        payload = bytes(rng.integers(0, 256, 4090, dtype=np.uint8))
        mcs = mcs_by_name("QAM64-3/4")
        frame = PhyTransmitter(mcs, coded=False).build_frame(payload)
        channel = ChannelModel(
            snr_db=26,
            rng=RngStream(4),
            profile=FadingProfile(coherence_time=20e-3),
            symbol_duration=40e-6,
            sfo_ppm=10.0,
        )
        receiver = PhyReceiver(coded=False)
        errors = np.zeros(frame.n_payload_symbols)
        for _ in range(30):
            rx = receiver.receive(channel.transmit(frame.symbols))
            errors += (rx.bit_matrix != frame.payload_bit_matrix).sum(axis=1)
        head = errors[:10].mean()
        tail = errors[-10:].mean()
        assert tail > 2.0 * head


class TestFrontend:
    def test_acquire_reports_cfo(self):
        mcs = mcs_by_name("BPSK-1/2")
        frame = PhyTransmitter(mcs).build_frame(b"abc" * 20)
        step = phase_step_from_cfo(1000.0)
        n = frame.n_symbols
        ramp = np.exp(1j * step * np.arange(n))[:, None]
        front = acquire(frame.symbols * ramp)
        assert front.cfo_hz == pytest.approx(1000.0, rel=1e-6)

    def test_truncated_frame_raises(self):
        mcs = mcs_by_name("BPSK-1/2")
        frame = PhyTransmitter(mcs).build_frame(b"a" * 600)
        with pytest.raises(SigDecodeError):
            PhyReceiver().receive(frame.symbols[:20])
