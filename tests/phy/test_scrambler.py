import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.scrambler import descramble, scramble, scrambler_sequence


class TestSequence:
    def test_period_127(self):
        seq = scrambler_sequence(254)
        np.testing.assert_array_equal(seq[:127], seq[127:])

    def test_balanced(self):
        seq = scrambler_sequence(127)
        # Maximal-length LFSR: 64 ones, 63 zeros per period.
        assert seq.sum() == 64

    def test_all_ones_seed_known_prefix(self):
        # 802.11a-2012 Annex: all-ones seed generates 00001110 1111...
        seq = scrambler_sequence(8, seed=0b1111111)
        assert seq.tolist() == [0, 0, 0, 0, 1, 1, 1, 0]

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            scrambler_sequence(10, seed=0)

    def test_seed_too_wide_rejected(self):
        with pytest.raises(ValueError):
            scrambler_sequence(10, seed=1 << 7)


class TestScramble:
    def test_self_inverse(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        np.testing.assert_array_equal(descramble(scramble(bits)), bits)

    def test_whitens_constant_input(self):
        zeros = np.zeros(1270, dtype=np.uint8)
        scrambled = scramble(zeros)
        assert 0.4 < scrambled.mean() < 0.6

    @given(st.integers(min_value=1, max_value=127), st.integers(0, 2**32 - 1))
    def test_round_trip_any_seed(self, seed, data_seed):
        rng = np.random.default_rng(data_seed)
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        np.testing.assert_array_equal(descramble(scramble(bits, seed), seed), bits)

    def test_different_seeds_differ(self):
        bits = np.zeros(100, dtype=np.uint8)
        assert not np.array_equal(scramble(bits, 1), scramble(bits, 2))
