import numpy as np
import pytest

from repro.phy.constants import (
    CP_LENGTH,
    DATA_SUBCARRIER_INDICES,
    FFT_SIZE,
    PILOT_SUBCARRIER_INDICES,
    USED_SUBCARRIER_INDICES,
)
from repro.phy.ofdm import (
    DATA_POSITIONS,
    PILOT_POSITIONS,
    assemble_symbol,
    map_subcarriers,
    ofdm_demodulate,
    ofdm_modulate,
    split_symbol,
    unmap_subcarriers,
)


class TestGrid:
    def test_counts(self):
        assert USED_SUBCARRIER_INDICES.size == 52
        assert DATA_SUBCARRIER_INDICES.size == 48
        assert PILOT_SUBCARRIER_INDICES.size == 4

    def test_pilot_locations(self):
        assert set(PILOT_SUBCARRIER_INDICES.tolist()) == {-21, -7, 7, 21}

    def test_dc_not_used(self):
        assert 0 not in USED_SUBCARRIER_INDICES

    def test_positions_partition_used(self):
        assert set(DATA_POSITIONS.tolist()) | set(PILOT_POSITIONS.tolist()) == set(range(52))
        assert not set(DATA_POSITIONS.tolist()) & set(PILOT_POSITIONS.tolist())


class TestAssembleSplit:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=48) + 1j * rng.normal(size=48)
        pilots = np.array([1.0, 1.0, 1.0, -1.0], dtype=complex)
        used = assemble_symbol(data, pilots)
        data2, pilots2 = split_symbol(used)
        np.testing.assert_allclose(data2, data)
        np.testing.assert_allclose(pilots2, pilots)

    def test_wrong_sizes_raise(self):
        with pytest.raises(ValueError):
            assemble_symbol(np.zeros(47, dtype=complex), np.zeros(4, dtype=complex))
        with pytest.raises(ValueError):
            assemble_symbol(np.zeros(48, dtype=complex), np.zeros(5, dtype=complex))


class TestMapping:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        used = rng.normal(size=52) + 1j * rng.normal(size=52)
        np.testing.assert_allclose(unmap_subcarriers(map_subcarriers(used)), used)

    def test_unused_bins_zero(self):
        grid = map_subcarriers(np.ones(52, dtype=complex))
        assert grid[0] == 0  # DC
        assert np.all(grid[27:38] == 0)  # guard band


class TestTimeDomain:
    def test_round_trip(self):
        rng = np.random.default_rng(2)
        used = rng.normal(size=52) + 1j * rng.normal(size=52)
        grid = map_subcarriers(used)
        samples = ofdm_modulate(grid)
        assert samples.shape[-1] == FFT_SIZE + CP_LENGTH
        np.testing.assert_allclose(ofdm_demodulate(samples), grid, atol=1e-12)

    def test_cyclic_prefix_is_tail_copy(self):
        rng = np.random.default_rng(3)
        grid = map_subcarriers(rng.normal(size=52) + 1j * rng.normal(size=52))
        samples = ofdm_modulate(grid)
        np.testing.assert_allclose(samples[:CP_LENGTH], samples[-CP_LENGTH:])

    def test_power_preserved(self):
        """sqrt(N)-scaled IFFT keeps average sample power = subcarrier power."""
        rng = np.random.default_rng(4)
        used = np.exp(1j * rng.uniform(0, 2 * np.pi, 52))  # unit-power tones
        grid = map_subcarriers(used)
        samples = ofdm_modulate(grid)[CP_LENGTH:]
        body_power = np.mean(np.abs(samples) ** 2) * FFT_SIZE
        assert body_power == pytest.approx(52.0, rel=1e-9)

    def test_batch_shapes(self):
        grids = np.zeros((5, FFT_SIZE), dtype=complex)
        assert ofdm_modulate(grids).shape == (5, FFT_SIZE + CP_LENGTH)

    def test_cyclic_shift_equivalence(self):
        """A one-tap delay in time = linear phase in frequency (CP makes it circular)."""
        rng = np.random.default_rng(5)
        used = rng.normal(size=52) + 1j * rng.normal(size=52)
        grid = map_subcarriers(used)
        samples = ofdm_modulate(grid)
        body = samples[CP_LENGTH:]
        delayed = np.roll(body, 1)
        shifted_grid = np.fft.fft(delayed) / np.sqrt(FFT_SIZE)
        k = np.arange(FFT_SIZE)
        expected = grid * np.exp(-2j * np.pi * k / FFT_SIZE)
        np.testing.assert_allclose(shifted_grid, expected, atol=1e-10)
