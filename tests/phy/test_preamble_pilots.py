import numpy as np
import pytest

from repro.phy.constants import PILOT_POLARITY, pilot_values
from repro.phy.ofdm import PILOT_POSITIONS, assemble_symbol
from repro.phy.pilots import compensate_phase, estimate_phase_offset, track_and_compensate
from repro.phy.preamble import LTF_SEQUENCE, STF_SEQUENCE


class TestPreambleSequences:
    def test_ltf_is_bpsk(self):
        assert set(np.unique(LTF_SEQUENCE.real)) <= {-1.0, 1.0}
        assert np.all(LTF_SEQUENCE.imag == 0)

    def test_ltf_full_band(self):
        assert np.all(np.abs(LTF_SEQUENCE) == 1.0)

    def test_stf_sparse(self):
        nonzero = np.flatnonzero(np.abs(STF_SEQUENCE) > 0)
        assert nonzero.size == 12

    def test_stf_power(self):
        # STF total power matches the 52-tone normalisation of the standard.
        total = np.sum(np.abs(STF_SEQUENCE) ** 2)
        assert total == pytest.approx(26.0, rel=1e-6)


class TestPilotPolarity:
    def test_polarity_values(self):
        assert set(np.unique(PILOT_POLARITY)) == {-1.0, 1.0}
        assert PILOT_POLARITY.size == 127

    def test_first_polarity_positive(self):
        # p₀ = +1 in 802.11a: the SIG symbol pilots are (1,1,1,-1).
        np.testing.assert_array_equal(pilot_values(0), [1, 1, 1, -1])

    def test_polarity_wraps(self):
        np.testing.assert_array_equal(pilot_values(127), pilot_values(0))

    def test_polarity_varies(self):
        assert any(
            not np.array_equal(pilot_values(i), pilot_values(0)) for i in range(1, 10)
        )


class TestPhaseTracking:
    def _symbol_with_phase(self, phase, symbol_index=0):
        rng = np.random.default_rng(0)
        data = np.exp(1j * rng.uniform(0, 2 * np.pi, 48))
        used = assemble_symbol(data, pilot_values(symbol_index))
        return used * np.exp(1j * phase)

    @pytest.mark.parametrize("phase", [-2.5, -0.7, 0.0, 0.3, 1.9])
    def test_estimates_injected_phase(self, phase):
        used = self._symbol_with_phase(phase, symbol_index=3)
        est = estimate_phase_offset(used, symbol_index=3)
        assert est == pytest.approx(phase, abs=1e-9)

    def test_wrong_polarity_index_breaks_estimate(self):
        """Using the wrong pilot polarity gives a wrong phase — the receiver
        must keep an absolute symbol counter."""
        idx_flip = next(
            i for i in range(1, 20)
            if not np.array_equal(pilot_values(i), pilot_values(0))
        )
        used = self._symbol_with_phase(0.5, symbol_index=idx_flip)
        wrong = estimate_phase_offset(used, symbol_index=0)
        assert abs(wrong - 0.5) > 0.1

    def test_track_and_compensate_removes_phase(self):
        used = self._symbol_with_phase(1.2, symbol_index=5)
        compensated, phase = track_and_compensate(used, 5)
        assert phase == pytest.approx(1.2, abs=1e-9)
        reference = self._symbol_with_phase(0.0, symbol_index=5)
        np.testing.assert_allclose(compensated, reference, atol=1e-9)

    def test_estimation_accuracy_independent_of_rotation(self):
        """Pilot tracking error must not depend on the amount of rotation —
        the property Carpool's side channel relies on (§5.2)."""
        rng = np.random.default_rng(7)
        errors = {}
        for phase in (0.1, 3.0):
            errs = []
            for _ in range(200):
                used = self._symbol_with_phase(phase)
                noise = 0.05 * (rng.normal(size=52) + 1j * rng.normal(size=52))
                est = estimate_phase_offset(used + noise, 0)
                errs.append(abs(np.angle(np.exp(1j * (est - phase)))))
            errors[phase] = np.mean(errs)
        assert errors[3.0] == pytest.approx(errors[0.1], rel=0.5)

    def test_compensate_phase_inverse(self):
        used = self._symbol_with_phase(0.0)
        rotated = compensate_phase(used, -0.8)
        np.testing.assert_allclose(compensate_phase(rotated, 0.8), used)
