import numpy as np
import pytest

from repro.phy import PhyReceiver, PhyTransmitter, mcs_by_name
from repro.phy.constants import SYMBOL_SAMPLES
from repro.phy.timedomain import (
    STF_PERIOD,
    TimeDomainChannel,
    coarse_cfo_estimate,
    detect_frame,
    frame_to_samples,
    samples_to_symbols,
)
from repro.util.rng import RngStream


def _frame(payload=b"sample-level path!" * 8, mcs_name="QPSK-1/2"):
    return PhyTransmitter(mcs_by_name(mcs_name), coded=True).build_frame(payload)


class TestSerialisation:
    def test_round_trip(self):
        frame = _frame()
        samples = frame_to_samples(frame.symbols)
        assert samples.size == frame.n_symbols * SYMBOL_SAMPLES
        symbols = samples_to_symbols(samples, frame.n_symbols)
        np.testing.assert_allclose(symbols, frame.symbols, atol=1e-10)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            samples_to_symbols(np.zeros(10, dtype=complex), 2)

    def test_stf_waveform_periodic(self):
        """The L-STF's 16-sample periodicity is what sync relies on."""
        frame = _frame()
        samples = frame_to_samples(frame.symbols)
        stf_body = samples[16 : 16 + 64]  # first STF symbol, after its CP
        np.testing.assert_allclose(stf_body[:STF_PERIOD], stf_body[STF_PERIOD:2 * STF_PERIOD],
                                   atol=1e-9)


class TestTimeDomainChannel:
    def test_taps_must_fit_cp(self):
        with pytest.raises(ValueError):
            TimeDomainChannel(taps=np.ones(20))

    def test_identity_channel_transparent(self):
        frame = _frame()
        channel = TimeDomainChannel(taps=np.array([1.0]), snr_db=80.0)
        received = channel.transmit(frame_to_samples(frame.symbols), RngStream(0).child("n"))
        symbols = samples_to_symbols(received, frame.n_symbols)
        np.testing.assert_allclose(symbols, frame.symbols, atol=1e-3)

    def test_equivalence_with_frequency_domain(self):
        """Time-domain convolution == per-subcarrier multiplication by the
        tap FFT, for in-CP delay spreads (aside from the one-symbol edge)."""
        frame = _frame()
        taps = np.array([0.8, 0.3 - 0.2j, 0.1j])
        channel = TimeDomainChannel(taps=taps, snr_db=200.0)
        received = channel.transmit(frame_to_samples(frame.symbols), RngStream(1).child("n"))
        symbols_td = samples_to_symbols(received, frame.n_symbols)

        from repro.phy.constants import FFT_SIZE, USED_SUBCARRIER_INDICES
        from repro.phy.ofdm import logical_to_fft_bins

        h = np.fft.fft(taps, FFT_SIZE)[logical_to_fft_bins(USED_SUBCARRIER_INDICES)]
        symbols_fd = frame.symbols * h[None, :]
        np.testing.assert_allclose(symbols_td, symbols_fd, atol=1e-6)

    def test_delay_shifts_frame(self):
        frame = _frame()
        channel = TimeDomainChannel(taps=np.array([1.0]), snr_db=80.0, delay_samples=37)
        received = channel.transmit(frame_to_samples(frame.symbols), RngStream(2).child("n"))
        symbols = samples_to_symbols(received[37:], frame.n_symbols)
        np.testing.assert_allclose(symbols, frame.symbols, atol=1e-3)


class TestSynchronization:
    def _received(self, delay, snr_db=20.0, cfo_hz=0.0, seed=3):
        frame = _frame()
        channel = TimeDomainChannel(
            taps=np.array([1.0, 0.15 - 0.1j]), snr_db=snr_db, cfo_hz=cfo_hz,
            delay_samples=delay,
        )
        samples = channel.transmit(frame_to_samples(frame.symbols),
                                   RngStream(seed).child("n"))
        return frame, samples

    @pytest.mark.parametrize("delay", [0, 23, 160, 401])
    def test_detects_start_within_cp(self, delay):
        frame, samples = self._received(delay)
        start = detect_frame(samples)
        assert start is not None
        # Timing within the CP is recoverable by the equalizer; require it.
        assert abs(start - delay) <= 12

    def test_no_detection_on_noise(self):
        noise = RngStream(4).child("n").complex_normal(scale=1.0, size=4000)
        assert detect_frame(noise) is None

    def test_coarse_cfo(self):
        frame, samples = self._received(delay=100, snr_db=25.0, cfo_hz=80e3)
        start = detect_frame(samples)
        cfo = coarse_cfo_estimate(samples, start)
        assert cfo == pytest.approx(80e3, abs=8e3)

    def test_cfo_needs_enough_samples(self):
        with pytest.raises(ValueError):
            coarse_cfo_estimate(np.zeros(50, dtype=complex), 0)


class TestEndToEndSampleLevel:
    def test_full_chain_through_waveform(self):
        """TX symbols → waveform → channel+delay → detect → align →
        standard receiver → payload."""
        payload = bytes(np.random.default_rng(5).integers(0, 256, 240, dtype=np.uint8))
        frame = PhyTransmitter(mcs_by_name("QAM16-1/2"), coded=True).build_frame(payload)
        channel = TimeDomainChannel(
            taps=np.array([0.9, 0.2 + 0.1j]), snr_db=28.0, cfo_hz=1500.0,
            delay_samples=211,
        )
        waveform = channel.transmit(frame_to_samples(frame.symbols),
                                    RngStream(6).child("n"))
        start = detect_frame(waveform)
        assert start is not None
        # Back off a few samples into the CP to avoid ISI from late taps.
        aligned = waveform[max(start - 4, 0):]
        symbols = samples_to_symbols(aligned, frame.n_symbols)
        rx = PhyReceiver(coded=True).receive(symbols)
        assert rx.payload == payload
