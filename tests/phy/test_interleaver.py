import numpy as np
import pytest

from repro.phy.interleaver import deinterleave, interleave, interleave_permutation
from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK


@pytest.mark.parametrize("mod", [BPSK, QPSK, QAM16, QAM64], ids=lambda m: m.name)
class TestInterleaver:
    def _n_cbps(self, mod):
        return 48 * mod.bits_per_symbol

    def test_is_permutation(self, mod):
        n = self._n_cbps(mod)
        perm = interleave_permutation(n, mod.bits_per_symbol)
        assert sorted(perm) == list(range(n))

    def test_round_trip(self, mod):
        n = self._n_cbps(mod)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, n, dtype=np.uint8)
        np.testing.assert_array_equal(
            deinterleave(interleave(bits, mod.bits_per_symbol), mod.bits_per_symbol), bits
        )

    def test_adjacent_coded_bits_spread_apart(self, mod):
        """Adjacent input bits must land on non-adjacent subcarriers."""
        n = self._n_cbps(mod)
        perm = np.array(interleave_permutation(n, mod.bits_per_symbol))
        subcarrier = perm // mod.bits_per_symbol
        gaps = np.abs(np.diff(subcarrier[: n // 16]))
        assert gaps.min() >= 2


class TestKnownValues:
    def test_bpsk_first_permutation_only(self):
        # For BPSK s=1, the second permutation is identity; position k maps
        # to 3*(k mod 16) + k//16 for N_CBPS=48.
        perm = interleave_permutation(48, 1)
        k = np.arange(48)
        expected = 3 * (k % 16) + k // 16
        np.testing.assert_array_equal(np.array(perm), expected)

    def test_non_multiple_of_16_rejected(self):
        with pytest.raises(ValueError):
            interleave_permutation(50, 1)
