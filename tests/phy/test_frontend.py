import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.phy import PhyTransmitter, mcs_by_name
from repro.phy.cfo import phase_step_from_cfo
from repro.phy.frontend import Acquisition, acquire
from repro.util.rng import RngStream

STATIC = FadingProfile(num_taps=1, ricean_k_db=60.0, coherence_time=np.inf)


def _frame():
    return PhyTransmitter(mcs_by_name("QPSK-1/2")).build_frame(b"front end" * 20)


class TestAcquire:
    def test_clean_frame_transparent(self):
        frame = _frame()
        front = acquire(frame.symbols)
        assert isinstance(front, Acquisition)
        assert abs(front.cfo_hz) < 1.0
        np.testing.assert_allclose(front.channel_estimate, np.ones(52), atol=1e-9)
        assert front.noise_variance < 1e-12

    def test_noise_variance_estimate_accurate(self):
        frame = _frame()
        for snr_db in (10.0, 20.0, 30.0):
            channel = ChannelModel(snr_db=snr_db, rng=RngStream(int(snr_db)),
                                   profile=STATIC, cfo_hz=0.0, sfo_ppm=0.0)
            estimates = []
            for t in range(30):
                channel_t = ChannelModel(snr_db=snr_db, rng=RngStream(100 + t),
                                         profile=STATIC, cfo_hz=0.0, sfo_ppm=0.0)
                front = acquire(channel_t.transmit(frame.symbols))
                estimates.append(front.noise_variance)
            expected = 10.0 ** (-snr_db / 10.0)
            assert np.mean(estimates) == pytest.approx(expected, rel=0.3)

    def test_cfo_removed_from_derotated(self):
        frame = _frame()
        step = phase_step_from_cfo(2000.0)
        n = frame.n_symbols
        ramp = np.exp(1j * step * np.arange(n))[:, None]
        front = acquire(frame.symbols * ramp)
        # After de-rotation the LTF repeats must agree again.
        np.testing.assert_allclose(front.derotated[2], front.derotated[3], atol=1e-9)

    def test_derotation_anchored_at_first_ltf(self):
        frame = _frame()
        front = acquire(frame.symbols)
        np.testing.assert_allclose(front.derotated, frame.symbols, atol=1e-12)

    def test_symbol_duration_scales_cfo_report(self):
        frame = _frame()
        step = phase_step_from_cfo(1000.0)  # at 4 µs symbols
        ramp = np.exp(1j * step * np.arange(frame.n_symbols))[:, None]
        received = frame.symbols * ramp
        at_20mhz = acquire(received).cfo_hz
        at_2mhz = acquire(received, symbol_duration=40e-6).cfo_hz
        assert at_20mhz == pytest.approx(10.0 * at_2mhz, rel=1e-6)
