"""Quantitative quality checks on the estimation blocks.

These pin the *accuracy* of the estimators (not just round-trips): LS
channel estimation error vs SNR, CFO estimator statistics, and equalizer
behaviour on known channels — the numbers the RTE analysis builds on.
"""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn
from repro.phy.channel_estimation import (
    equalize,
    estimate_from_known_symbol,
    estimate_from_ltf,
)
from repro.phy.cfo import cfo_from_phase_step, estimate_cfo_from_ltf, phase_step_from_cfo
from repro.phy.preamble import LTF_SEQUENCE
from repro.util.rng import RngStream


def _random_channel(rng, taps=3):
    h_taps = rng.complex_normal(scale=1.0, size=taps) / np.sqrt(taps)
    from repro.phy.constants import FFT_SIZE, USED_SUBCARRIER_INDICES
    from repro.phy.ofdm import logical_to_fft_bins

    return np.fft.fft(h_taps, FFT_SIZE)[logical_to_fft_bins(USED_SUBCARRIER_INDICES)]


class TestLtfEstimationAccuracy:
    def test_noiseless_exact(self):
        rng = RngStream(0).child("h")
        h = _random_channel(rng)
        received = np.vstack([h * LTF_SEQUENCE, h * LTF_SEQUENCE])
        np.testing.assert_allclose(estimate_from_ltf(received), h, atol=1e-12)

    def test_error_scales_with_snr(self):
        """LS estimation MSE ≈ σ²/2 (two averaged repetitions)."""
        rng = RngStream(1)
        h = np.ones(52, dtype=complex)
        for snr_db in (10.0, 20.0):
            errors = []
            for t in range(300):
                noise_rng = RngStream(1000 + t).child("n")
                received = add_awgn(
                    np.vstack([h * LTF_SEQUENCE, h * LTF_SEQUENCE]), snr_db, noise_rng
                )
                estimate = estimate_from_ltf(received)
                errors.append(np.mean(np.abs(estimate - h) ** 2))
            expected = 10 ** (-snr_db / 10) / 2
            assert np.mean(errors) == pytest.approx(expected, rel=0.2)

    def test_two_repeats_halve_error_vs_one(self):
        h = np.ones(52, dtype=complex)
        one_errors, two_errors = [], []
        for t in range(300):
            noise_rng = RngStream(2000 + t).child("n")
            rx = add_awgn(np.vstack([h * LTF_SEQUENCE, h * LTF_SEQUENCE]), 15.0, noise_rng)
            one_errors.append(np.mean(np.abs(estimate_from_ltf(rx[0]) - h) ** 2))
            two_errors.append(np.mean(np.abs(estimate_from_ltf(rx) - h) ** 2))
        assert np.mean(two_errors) == pytest.approx(np.mean(one_errors) / 2, rel=0.25)


class TestDataPilotEstimation:
    def test_known_symbol_recovers_channel(self):
        rng = RngStream(3).child("h")
        h = _random_channel(rng)
        known = np.exp(1j * RngStream(4).child("x").uniform(0, 2 * np.pi, 52))
        estimate = estimate_from_known_symbol(h * known, known)
        np.testing.assert_allclose(estimate, h, atol=1e-12)

    def test_zero_subcarriers_flagged_nan(self):
        known = np.ones(52, dtype=complex)
        known[10] = 0.0
        estimate = estimate_from_known_symbol(known.copy(), known)
        assert np.isnan(estimate[10])
        assert not np.isnan(estimate[11])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            estimate_from_known_symbol(np.ones(52), np.ones(51))


class TestEqualizer:
    def test_inverts_known_channel(self):
        rng = RngStream(5).child("h")
        h = _random_channel(rng)
        x = np.exp(1j * RngStream(6).child("x").uniform(0, 2 * np.pi, 52))
        np.testing.assert_allclose(equalize(h * x, h), x, atol=1e-12)

    def test_deep_fade_passthrough(self):
        h = np.ones(52, dtype=complex)
        h[5] = 0.0
        received = np.ones(52, dtype=complex)
        out = equalize(received, h)
        assert out[5] == received[5]  # no division blow-up
        assert np.isfinite(out).all()


class TestCfoEstimatorStatistics:
    def test_unbiased_over_noise(self):
        true_cfo = 3000.0
        step = phase_step_from_cfo(true_cfo)
        estimates = []
        for t in range(200):
            noise_rng = RngStream(3000 + t).child("n")
            ltf1 = add_awgn(LTF_SEQUENCE.copy(), 15.0, noise_rng)
            ltf2 = add_awgn(LTF_SEQUENCE * np.exp(1j * step), 15.0, noise_rng)
            estimates.append(estimate_cfo_from_ltf(ltf1, ltf2))
        assert np.mean(estimates) == pytest.approx(true_cfo, rel=0.05)

    def test_unambiguous_range(self):
        """±1/(2·T_sym) = ±125 kHz at 20 MHz timing."""
        for cfo in (-120e3, -50e3, 50e3, 120e3):
            step = phase_step_from_cfo(cfo)
            est = estimate_cfo_from_ltf(LTF_SEQUENCE, LTF_SEQUENCE * np.exp(1j * step))
            assert est == pytest.approx(cfo, rel=1e-9)

    def test_phase_step_round_trip(self):
        assert cfo_from_phase_step(phase_step_from_cfo(1234.5)) == pytest.approx(1234.5)
