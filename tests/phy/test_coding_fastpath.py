"""The vectorised/C coding fast paths must be bit-exact vs the references.

``conv_encode``/``viterbi_decode`` were rewritten as table-driven block
operations (with an optional compiled ACS kernel); the original per-bit
implementations are retained as ``*_reference`` oracles. These property
tests drive both through random messages, bit flips standing in for
channel errors, every puncturing rate, terminated and open trellises, and
degenerate tiny frames — and require exact agreement everywhere, for both
the C kernel and the NumPy fallback.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import coding
from repro.phy.coding import (
    RATE_1_2,
    RATE_2_3,
    RATE_3_4,
    conv_encode,
    conv_encode_reference,
    viterbi_decode,
    viterbi_decode_reference,
)

RATES = {"1/2": RATE_1_2, "2/3": RATE_2_3, "3/4": RATE_3_4}


def _message(rng: np.random.Generator, rate, max_periods: int) -> np.ndarray:
    period = rate.pattern.shape[1]
    n_bits = period * int(rng.integers(1, max_periods + 1))
    return rng.integers(0, 2, n_bits).astype(np.uint8)


BACKENDS = ["ckernel", "numpy"]


@contextlib.contextmanager
def _backend(name):
    """Force decode through the C kernel or the NumPy fallback.

    A context manager rather than a fixture so it composes with
    ``@given`` (hypothesis forbids function-scoped fixtures).
    """
    if name == "numpy":
        saved = coding._CKERNEL
        coding._CKERNEL = None
        try:
            yield
        finally:
            coding._CKERNEL = saved
    else:
        if coding._CKERNEL is None:
            pytest.skip("C kernel unavailable in this environment")
        yield


@pytest.mark.parametrize("rate_name", sorted(RATES))
@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_encoder_matches_reference(rate_name, seed):
    rate = RATES[rate_name]
    rng = np.random.default_rng(seed)
    message = _message(rng, rate, max_periods=200)
    assert np.array_equal(conv_encode(message, rate),
                          conv_encode_reference(message, rate))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("rate_name", sorted(RATES))
@pytest.mark.parametrize("terminated", [True, False])
@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_decoder_matches_reference(backend, rate_name, terminated, seed):
    rate = RATES[rate_name]
    rng = np.random.default_rng(seed)
    message = _message(rng, rate, max_periods=60)
    if terminated:
        message[-coding.CONSTRAINT_LENGTH + 1 :] = 0
    coded = conv_encode(message, rate)
    # Random channel errors, up to a heavy 20 % flip rate.
    flips = rng.random(coded.size) < rng.uniform(0.0, 0.2)
    received = coded ^ flips.astype(np.uint8)
    with _backend(backend):
        fast = viterbi_decode(received, message.size, rate, terminated=terminated)
    reference = viterbi_decode_reference(received, message.size, rate,
                                         terminated=terminated)
    assert np.array_equal(fast, reference)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("rate_name", sorted(RATES))
def test_tiny_frames_match_reference(backend, rate_name):
    """Frames shorter than the constraint length exercise degenerate paths."""
    rate = RATES[rate_name]
    period = rate.pattern.shape[1]
    rng = np.random.default_rng(7)
    with _backend(backend):
        for n_periods in (1, 2):
            n_bits = period * n_periods
            for _ in range(20):
                received = rng.integers(0, 2, rate.coded_bits(n_bits)).astype(np.uint8)
                for terminated in (True, False):
                    fast = viterbi_decode(received, n_bits, rate,
                                          terminated=terminated)
                    ref = viterbi_decode_reference(received, n_bits, rate,
                                                   terminated=terminated)
                    assert np.array_equal(fast, ref), (rate_name, n_bits, terminated)


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_zero_and_all_one_inputs(backend):
    """Adversarial constant inputs create massive metric ties — the
    tie-break rule must match the reference exactly."""
    with _backend(backend):
        for rate in RATES.values():
            period = rate.pattern.shape[1]
            n_bits = period * 40
            for value in (0, 1):
                received = np.full(rate.coded_bits(n_bits), value, dtype=np.uint8)
                for terminated in (True, False):
                    fast = viterbi_decode(received, n_bits, rate,
                                          terminated=terminated)
                    ref = viterbi_decode_reference(received, n_bits, rate,
                                                   terminated=terminated)
                    assert np.array_equal(fast, ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_clean_roundtrip_all_rates(backend):
    rng = np.random.default_rng(3)
    with _backend(backend):
        for rate in RATES.values():
            message = _message(rng, rate, max_periods=100)
            message[-coding.CONSTRAINT_LENGTH + 1 :] = 0
            decoded = viterbi_decode(conv_encode(message, rate), message.size, rate)
            assert np.array_equal(decoded, message)


def test_numpy_fallback_engages(monkeypatch):
    """With the kernel disabled the pure-NumPy ACS must decode correctly."""
    monkeypatch.setattr(coding, "_CKERNEL", None)
    rng = np.random.default_rng(11)
    message = rng.integers(0, 2, 96).astype(np.uint8)
    message[-6:] = 0
    decoded = viterbi_decode(conv_encode(message, RATE_1_2), message.size, RATE_1_2)
    assert np.array_equal(decoded, message)
