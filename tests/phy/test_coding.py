import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.coding import (
    RATE_1_2,
    RATE_2_3,
    RATE_3_4,
    conv_encode,
    viterbi_decode,
)

RATES = [RATE_1_2, RATE_2_3, RATE_3_4]


def _message(rng, length, tail=True):
    bits = rng.integers(0, 2, size=length, dtype=np.uint8)
    if tail:
        bits[-6:] = 0
    return bits


@pytest.mark.parametrize("rate", RATES, ids=lambda r: r.name)
class TestEncode:
    def test_output_length(self, rate):
        n = 24 * rate.numerator  # multiple of every puncture period
        coded = conv_encode(np.zeros(n, dtype=np.uint8), rate)
        assert coded.size == rate.coded_bits(n)
        assert coded.size * rate.numerator == n * rate.denominator

    def test_all_zero_input_gives_all_zero_output(self, rate):
        coded = conv_encode(np.zeros(48, dtype=np.uint8), rate)
        assert not coded.any()

    def test_linearity(self, rate):
        """Convolutional codes are linear: enc(a⊕b) = enc(a)⊕enc(b)."""
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 48, dtype=np.uint8)
        b = rng.integers(0, 2, 48, dtype=np.uint8)
        np.testing.assert_array_equal(
            conv_encode(a ^ b, rate), conv_encode(a, rate) ^ conv_encode(b, rate)
        )


@pytest.mark.parametrize("rate", RATES, ids=lambda r: r.name)
class TestViterbi:
    def test_noiseless_round_trip(self, rate):
        rng = np.random.default_rng(1)
        msg = _message(rng, 120)
        coded = conv_encode(msg, rate)
        np.testing.assert_array_equal(viterbi_decode(coded, msg.size, rate), msg)

    def test_corrects_scattered_errors(self, rate):
        rng = np.random.default_rng(2)
        msg = _message(rng, 240)
        coded = conv_encode(msg, rate)
        # Flip well-separated bits: within the free distance of the code.
        corrupted = coded.copy()
        for pos in range(10, corrupted.size - 10, 60):
            corrupted[pos] ^= 1
        np.testing.assert_array_equal(viterbi_decode(corrupted, msg.size, rate), msg)

    def test_wrong_coded_length_raises(self, rate):
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros(10, dtype=np.uint8), 100, rate)


class TestUnterminated:
    def test_round_trip_without_termination(self):
        rng = np.random.default_rng(3)
        msg = rng.integers(0, 2, 48, dtype=np.uint8)  # A-HDR-style: no tail
        coded = conv_encode(msg, RATE_1_2)
        decoded = viterbi_decode(coded, 48, RATE_1_2, terminated=False)
        np.testing.assert_array_equal(decoded, msg)


class TestRandomizedRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_rate_half_survives_two_percent_errors(self, seed):
        rng = np.random.default_rng(seed)
        msg = _message(rng, 96)
        coded = conv_encode(msg, RATE_1_2)
        corrupted = coded.copy()
        flips = rng.choice(coded.size, size=max(1, coded.size // 50), replace=False)
        # Keep flips separated to stay within correction capability.
        flips = np.sort(flips)
        flips = flips[np.concatenate([[True], np.diff(flips) > 14])]
        corrupted[flips] ^= 1
        np.testing.assert_array_equal(viterbi_decode(corrupted, msg.size), msg)
