import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.phy import PhyReceiver, PhyTransmitter, mcs_by_name
from repro.phy.coding import RATE_1_2, RATE_3_4, conv_encode
from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK
from repro.phy.soft import (
    deinterleave_llrs,
    soft_demodulate,
    viterbi_decode_soft,
)
from repro.util.rng import RngStream


class TestSoftDemodulate:
    @pytest.mark.parametrize("mod", [BPSK, QPSK, QAM16, QAM64], ids=lambda m: m.name)
    def test_signs_match_hard_decisions(self, mod):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 48 * mod.bits_per_symbol, dtype=np.uint8)
        points = mod.modulate(bits)
        llrs = soft_demodulate(points, mod)
        hard = (llrs < 0).astype(np.uint8)  # negative LLR ⇒ bit 1
        np.testing.assert_array_equal(hard, bits)

    def test_magnitude_reflects_confidence(self):
        # A point on the boundary has |LLR| ≈ 0; a clean point does not.
        clean = soft_demodulate(np.array([1.0 + 0j]), BPSK)
        boundary = soft_demodulate(np.array([0.001 + 0j]), BPSK)
        assert abs(clean[0]) > 100 * abs(boundary[0])

    def test_reliability_scales_llrs(self):
        points = np.array([1.0 + 0j, -1.0 + 0j])
        weak = soft_demodulate(points, BPSK, reliability=0.1)
        strong = soft_demodulate(points, BPSK, reliability=10.0)
        np.testing.assert_allclose(strong, 100 * weak)

    def test_per_point_reliability(self):
        points = np.array([1.0 + 0j, 1.0 + 0j])  # BPSK +1 ⇒ bit 1 ⇒ LLR < 0
        llrs = soft_demodulate(points, BPSK, reliability=np.array([1.0, 0.0]))
        assert llrs[0] < 0
        assert llrs[1] == 0.0  # zero reliability ⇒ no opinion


class TestSoftViterbi:
    def _llrs_from_bits(self, coded, flip_scale=4.0):
        # bit 0 → +scale, bit 1 → −scale.
        return flip_scale * (1.0 - 2.0 * coded.astype(float))

    @pytest.mark.parametrize("rate", [RATE_1_2, RATE_3_4], ids=lambda r: r.name)
    def test_noiseless_round_trip(self, rate):
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 2, 120, dtype=np.uint8)
        msg[-6:] = 0
        coded = conv_encode(msg, rate)
        decoded = viterbi_decode_soft(self._llrs_from_bits(coded), msg.size, rate)
        np.testing.assert_array_equal(decoded, msg)

    def test_erasures_tolerated(self):
        """Zero-LLR (erased) positions are survivable."""
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 96, dtype=np.uint8)
        msg[-6:] = 0
        coded = conv_encode(msg, RATE_1_2)
        llrs = self._llrs_from_bits(coded)
        llrs[5::17] = 0.0  # scatter erasures
        decoded = viterbi_decode_soft(llrs, msg.size, RATE_1_2)
        np.testing.assert_array_equal(decoded, msg)

    def test_weak_wrong_votes_overruled(self):
        """Soft decoding's whole point: confidently-right bits outvote
        weakly-wrong ones (hard decoding would have to correct them)."""
        rng = np.random.default_rng(3)
        msg = rng.integers(0, 2, 96, dtype=np.uint8)
        msg[-6:] = 0
        coded = conv_encode(msg, RATE_1_2)
        llrs = self._llrs_from_bits(coded, flip_scale=4.0)
        # Flip a third of the positions but only with tiny confidence.
        flips = rng.choice(llrs.size, size=llrs.size // 3, replace=False)
        llrs[flips] = -0.3 * np.sign(llrs[flips])
        decoded = viterbi_decode_soft(llrs, msg.size, RATE_1_2)
        np.testing.assert_array_equal(decoded, msg)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            viterbi_decode_soft(np.zeros(10), 100, RATE_1_2)

    def test_deinterleave_llrs_matches_bit_path(self):
        from repro.phy.interleaver import interleave

        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 96, dtype=np.uint8)
        interleaved = interleave(bits, QPSK.bits_per_symbol)
        llrs = 1.0 - 2.0 * interleaved.astype(float)
        restored = (deinterleave_llrs(llrs, QPSK.bits_per_symbol) < 0).astype(np.uint8)
        np.testing.assert_array_equal(restored, bits)


class TestSoftReceiver:
    def test_soft_requires_coded(self):
        with pytest.raises(ValueError):
            PhyReceiver(coded=False, soft=True)

    def test_loopback(self):
        payload = bytes(np.random.default_rng(5).integers(0, 256, 300, dtype=np.uint8))
        mcs = mcs_by_name("QAM16-1/2")
        frame = PhyTransmitter(mcs).build_frame(payload)
        rx = PhyReceiver(soft=True).receive(frame.symbols)
        assert rx.payload == payload

    @pytest.mark.slow
    def test_soft_beats_hard_on_faded_channel(self):
        """FER comparison on a frequency-selective link: the soft path's
        per-subcarrier reliability weighting must win."""
        rng = np.random.default_rng(6)
        payload = bytes(rng.integers(0, 256, 400, dtype=np.uint8))
        mcs = mcs_by_name("QAM16-3/4")
        frame = PhyTransmitter(mcs).build_frame(payload)
        profile = FadingProfile(num_taps=4, delay_spread_taps=1.5,
                                ricean_k_db=5.0, coherence_time=np.inf)
        hard_errors = 0
        soft_errors = 0
        trials = 40
        for t in range(trials):
            channel = ChannelModel(snr_db=19.0, rng=RngStream(100 + t),
                                   profile=profile)
            received = channel.transmit(frame.symbols)
            hard_errors += PhyReceiver(soft=False).receive(received).payload != payload
            soft_errors += PhyReceiver(soft=True).receive(received).payload != payload
        assert soft_errors < 0.7 * hard_errors
        assert hard_errors >= 8  # the regime actually stresses the decoder
