import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.modulation import BPSK, MODULATIONS, QAM16, QAM64, QPSK, get_modulation

ALL = [BPSK, QPSK, QAM16, QAM64]


@pytest.mark.parametrize("mod", ALL, ids=lambda m: m.name)
class TestConstellations:
    def test_unit_average_power(self, mod):
        assert np.mean(np.abs(mod.points) ** 2) == pytest.approx(1.0)

    def test_point_count(self, mod):
        assert mod.points.size == 2**mod.bits_per_symbol

    def test_points_distinct(self, mod):
        assert len(set(np.round(mod.points, 9))) == mod.points.size

    def test_round_trip_noiseless(self, mod):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=mod.bits_per_symbol * 96, dtype=np.uint8)
        symbols = mod.modulate(bits)
        np.testing.assert_array_equal(mod.demodulate(symbols), bits)

    def test_gray_coding_neighbours_differ_by_one_bit(self, mod):
        """Nearest constellation neighbours differ in exactly one bit."""
        points = mod.points
        for i in range(points.size):
            dists = np.abs(points - points[i])
            dists[i] = np.inf
            nearest = np.flatnonzero(np.isclose(dists, dists.min()))
            for j in nearest:
                assert bin(i ^ j).count("1") == 1

    def test_remodulate_projects_onto_constellation(self, mod):
        rng = np.random.default_rng(1)
        noisy = mod.points + 0.01 * (rng.normal(size=mod.points.size)
                                     + 1j * rng.normal(size=mod.points.size))
        np.testing.assert_allclose(mod.remodulate(noisy), mod.points)

    def test_wrong_bit_count_raises(self, mod):
        if mod.bits_per_symbol == 1:
            pytest.skip("any count is a multiple of 1")
        with pytest.raises(ValueError):
            mod.modulate(np.zeros(mod.bits_per_symbol + 1, dtype=np.uint8))


class TestSmallNoiseRobustness:
    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(0, 3))
    def test_decisions_stable_under_small_noise(self, seed, mod_idx):
        mod = ALL[mod_idx]
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=mod.bits_per_symbol * 24, dtype=np.uint8)
        symbols = mod.modulate(bits)
        # Perturb by less than half the minimum distance.
        min_dist = min(
            np.abs(a - b) for i, a in enumerate(mod.points) for b in mod.points[i + 1:]
        )
        noise = (0.3 * min_dist) * np.exp(1j * rng.uniform(0, 2 * np.pi, symbols.size))
        np.testing.assert_array_equal(mod.demodulate(symbols + noise), bits)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_modulation("qam16") is QAM16
        assert get_modulation("QAM-64") is QAM64

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_modulation("QAM1024")

    def test_registry_complete(self):
        assert set(MODULATIONS) == {"BPSK", "QPSK", "QAM16", "QAM64"}
