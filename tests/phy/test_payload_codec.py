import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import payload_codec
from repro.phy.mcs import MCS_TABLE, mcs_by_name
from repro.phy.ofdm import split_symbol


@pytest.mark.parametrize("mcs", MCS_TABLE, ids=lambda m: m.name)
@pytest.mark.parametrize("coded", [True, False], ids=["coded", "uncoded"])
class TestRoundTrip:
    def test_bytes_round_trip(self, mcs, coded):
        rng = np.random.default_rng(0)
        payload = bytes(rng.integers(0, 256, 700, dtype=np.uint8))
        matrix = payload_codec.encode_payload_bits(payload, mcs, coded)
        assert matrix.shape == (
            payload_codec.num_payload_symbols(len(payload), mcs, coded),
            mcs.coded_bits_per_symbol,
        )
        decoded = payload_codec.decode_payload_bits(matrix, len(payload), mcs, coded)
        assert decoded == payload

    def test_symbols_round_trip(self, mcs, coded):
        rng = np.random.default_rng(1)
        payload = bytes(rng.integers(0, 256, 300, dtype=np.uint8))
        matrix = payload_codec.encode_payload_bits(payload, mcs, coded)
        symbols = payload_codec.bits_to_symbols(matrix, mcs, first_pilot_index=1)
        recovered = payload_codec.symbols_to_bits(symbols, mcs)
        np.testing.assert_array_equal(recovered, matrix)


class TestSymbolCounts:
    def test_coded_includes_service_and_tail(self):
        mcs = mcs_by_name("BPSK-1/2")  # 24 data bits/symbol
        # 1 byte → 16 + 8 + 6 = 30 bits → 2 symbols.
        assert payload_codec.num_payload_symbols(1, mcs, coded=True) == 2

    def test_uncoded_exact(self):
        mcs = mcs_by_name("QAM64-3/4")  # 288 coded bits/symbol
        assert payload_codec.num_payload_symbols(36, mcs, coded=False) == 1
        assert payload_codec.num_payload_symbols(37, mcs, coded=False) == 2

    def test_paper_4kb_qam64_is_114_symbols(self):
        """4 KB QAM64 uncoded ≈ 114 symbols — the x-axis span of Fig. 3."""
        mcs = mcs_by_name("QAM64-3/4")
        assert payload_codec.num_payload_symbols(4090, mcs, coded=False) == 114

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            payload_codec.num_payload_symbols(0, MCS_TABLE[0])


class TestPhases:
    def test_phase_rotates_whole_symbol(self):
        mcs = mcs_by_name("QPSK-1/2")
        rng = np.random.default_rng(2)
        payload = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        matrix = payload_codec.encode_payload_bits(payload, mcs, coded=False)
        n = matrix.shape[0]
        base = payload_codec.bits_to_symbols(matrix, mcs, first_pilot_index=1)
        phases = np.linspace(0.3, 1.5, n)
        rotated = payload_codec.bits_to_symbols(matrix, mcs, 1, phases=phases)
        for i in range(n):
            np.testing.assert_allclose(rotated[i], base[i] * np.exp(1j * phases[i]))

    def test_pilots_rotate_with_data(self):
        """Injected phase must preserve the pilot/data relationship."""
        mcs = mcs_by_name("BPSK-1/2")
        matrix = payload_codec.encode_payload_bits(b"\xaa" * 12, mcs, coded=False)
        rotated = payload_codec.bits_to_symbols(
            matrix, mcs, 1, phases=np.full(matrix.shape[0], np.pi / 2)
        )
        _, pilots = split_symbol(rotated[0])
        # Pilots should be purely imaginary after a 90° rotation.
        assert np.allclose(pilots.real, 0.0, atol=1e-12)

    def test_wrong_phase_count_raises(self):
        mcs = mcs_by_name("BPSK-1/2")
        matrix = payload_codec.encode_payload_bits(b"abcdef", mcs, coded=False)
        with pytest.raises(ValueError):
            payload_codec.bits_to_symbols(matrix, mcs, 1, phases=np.zeros(99))


class TestPropertyRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=400), st.integers(0, 7), st.booleans())
    def test_any_payload_any_mcs(self, payload, mcs_idx, coded):
        mcs = MCS_TABLE[mcs_idx]
        matrix = payload_codec.encode_payload_bits(payload, mcs, coded)
        decoded = payload_codec.decode_payload_bits(matrix, len(payload), mcs, coded)
        assert decoded == payload
