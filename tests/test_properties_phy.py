"""Hypothesis property tests on the PHY-side invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compat import FrameFormat, classify_frame
from repro.core.frame import CarpoolTransmitter, SubframeSpec
from repro.core.mac_address import MacAddress
from repro.phy import MCS_TABLE, PhyTransmitter
from repro.phy.mimo import MimoChannel, zero_forcing_precoder
from repro.phy.timedomain import TimeDomainChannel, detect_frame, frame_to_samples
from repro.util.rng import RngStream


class TestClassificationProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 7), st.integers(1, 400))
    def test_legacy_frames_always_classified_legacy(self, mcs_idx, size):
        frame = PhyTransmitter(MCS_TABLE[mcs_idx]).build_frame(bytes(size))
        assert classify_frame(frame.symbols) is FrameFormat.LEGACY

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 2**16))
    def test_carpool_frames_always_classified_carpool(self, n, seed):
        rng = np.random.default_rng(seed)
        specs = [
            SubframeSpec(MacAddress.from_int(i),
                         bytes(rng.integers(0, 256, 60, dtype=np.uint8)),
                         MCS_TABLE[2])
            for i in range(n)
        ]
        frame = CarpoolTransmitter().build_frame(specs)
        assert classify_frame(frame.symbols) is FrameFormat.CARPOOL


class TestSynchronizationProperty:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 600), st.integers(0, 2**16))
    def test_detection_within_cp_for_any_delay(self, delay, seed):
        frame = PhyTransmitter(MCS_TABLE[2]).build_frame(b"sync" * 30)
        channel = TimeDomainChannel(taps=np.array([1.0]), snr_db=22.0,
                                    delay_samples=delay)
        samples = channel.transmit(frame_to_samples(frame.symbols),
                                   RngStream(seed).child("n"))
        start = detect_frame(samples)
        assert start is not None
        assert abs(start - delay) <= 12


class TestZeroForcingProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16), st.integers(2, 4))
    def test_interference_nulled_for_any_channel(self, seed, antennas):
        channel = MimoChannel(num_users=antennas, num_antennas=antennas,
                              rng=RngStream(seed))
        users = list(range(antennas))
        w = zero_forcing_precoder(channel, users)
        for k in (0, 26, 51):
            gains = channel.group_matrix(users, k) @ w[:, :, k]
            off_diagonal = gains - np.diag(np.diag(gains))
            assert np.max(np.abs(off_diagonal)) < 1e-6
