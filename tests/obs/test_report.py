"""The trace renderer behind `repro report`."""

import json

import pytest

from repro.obs.report import (
    event_counts,
    fallback_transitions,
    fault_timeline,
    final_metrics,
    format_report,
    load_events,
    timer_rows,
)


def _write_trace(path, events):
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return path


@pytest.fixture
def trace(tmp_path):
    """A synthetic but representative trace: MAC faults, a fallback
    demote/re-promote cycle, and the final merged-metrics event."""
    events = [
        {"seq": 0, "layer": "mac", "event": "transmit", "node": "ap"},
        {"seq": 1, "layer": "phy", "event": "ahdr_miss", "node": "sta1",
         "cid": "t00000-aa"},
        {"seq": 2, "layer": "mac", "event": "ack_desync", "first_gap": 0},
        {"seq": 3, "layer": "mac", "event": "demote", "node": "sta1",
         "t": 0.4},
        {"seq": 4, "layer": "phy", "event": "rte_reject",
         "outlier_share": 0.8},
        {"seq": 5, "layer": "mac", "event": "repromote", "node": "sta1",
         "t": 0.7},
        {"seq": 6, "layer": "obs", "event": "metrics", "metrics": {
            "counters": {"mac.demotions": 1},
            "timers": {
                "runtime.run_trials": {"count": 2, "total": 1.0,
                                       "min": 0.4, "max": 0.6},
                "net.run_cell": {"count": 4, "total": 3.0,
                                 "min": 0.5, "max": 1.0},
            },
        }},
    ]
    return _write_trace(tmp_path / "run.jsonl", events)


class TestLoaders:
    def test_load_events(self, trace):
        events = load_events(trace)
        assert len(events) == 7
        assert events[3]["event"] == "demote"

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(path)

    def test_final_metrics(self, trace):
        metrics = final_metrics(load_events(trace))
        assert metrics["counters"]["mac.demotions"] == 1

    def test_final_metrics_empty_without_snapshot(self):
        assert final_metrics([{"layer": "mac", "event": "transmit"}]) == {}

    def test_event_counts(self, trace):
        counts = event_counts(load_events(trace))
        assert counts[("phy", "ahdr_miss")] == 1
        assert counts[("obs", "metrics")] == 1


class TestTables:
    def test_timer_rows_sorted_by_total(self, trace):
        rows = timer_rows(final_metrics(load_events(trace)))
        assert [r[0] for r in rows] == ["net.run_cell", "runtime.run_trials"]
        name, count, total, mean, max_s = rows[0]
        assert count == 4 and total == 3.0 and mean == 0.75 and max_s == 1.0

    def test_timer_rows_top_cap(self, trace):
        rows = timer_rows(final_metrics(load_events(trace)), top=1)
        assert len(rows) == 1

    def test_fault_timeline(self, trace):
        names = [e["event"] for e in fault_timeline(load_events(trace))]
        assert names == ["ahdr_miss", "ack_desync", "rte_reject"]
        capped = fault_timeline(load_events(trace), limit=2)
        assert len(capped) == 2

    def test_fallback_transitions(self, trace):
        events = fallback_transitions(load_events(trace))
        assert [e["event"] for e in events] == ["demote", "repromote"]


class TestFormatReport:
    def test_renders_all_sections(self, trace):
        text = format_report(trace)
        assert "7 events" in text
        assert "Event counts by layer" in text
        assert "Top timers" in text
        assert "net.run_cell" in text
        assert "Fault timeline" in text
        assert "Fallback transitions (1 demote, 1 repromote)" in text
        assert "mac.demote" in text

    def test_empty_trace(self, tmp_path):
        path = _write_trace(tmp_path / "empty.jsonl", [])
        assert "(empty trace)" in format_report(path)
