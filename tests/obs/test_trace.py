"""TraceRecorder, ambient state, worker capture, and ObsSession."""

import json

import pytest

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import (
    ObsChunk,
    ObsSession,
    TraceRecorder,
    active_recorder,
    chunk_capture,
    collecting,
    disable_metrics,
    enable_metrics,
    ingest_chunk,
    metrics,
    metrics_enabled,
    set_recorder,
    suspended,
    trial_correlation_id,
    worker_spec,
)


class TestRecorder:
    def test_emit_sequences_and_fields(self):
        rec = TraceRecorder(None, deterministic=True)
        rec.emit("mac", "demote", node="sta1")
        rec.emit("mac", "repromote", node="sta1")
        assert [e["seq"] for e in rec.events] == [0, 1]
        assert rec.events[0]["layer"] == "mac"
        assert rec.events[0]["event"] == "demote"
        assert rec.events[0]["node"] == "sta1"
        assert len(rec) == 2

    def test_deterministic_omits_wall_clock(self):
        det = TraceRecorder(None, deterministic=True)
        det.emit("phy", "crc")
        assert "ts" not in det.events[0]
        wall = TraceRecorder(None)
        wall.emit("phy", "crc")
        assert wall.events[0]["ts"] >= 0

    def test_correlate_nests_and_restores(self):
        rec = TraceRecorder(None, deterministic=True)
        with rec.correlate("outer"):
            rec.emit("a", "x")
            with rec.correlate("inner"):
                rec.emit("a", "y")
            rec.emit("a", "z")
        rec.emit("a", "w")
        cids = [e.get("cid") for e in rec.events]
        assert cids == ["outer", "inner", "outer", None]

    def test_sampling(self):
        rec = TraceRecorder(None, sample_every=3)
        assert [i for i in range(9) if rec.sample(i)] == [0, 3, 6]
        unsampled = TraceRecorder(None)  # sample_every=0: never
        assert not any(unsampled.sample(i) for i in range(10))

    def test_ingest_restamps_seq(self):
        parent = TraceRecorder(None, deterministic=True)
        parent.emit("a", "first")
        parent.ingest([{"seq": 7, "layer": "b", "event": "x", "k": 1}])
        assert [e["seq"] for e in parent.events] == [0, 1]
        assert parent.events[1]["k"] == 1

    def test_flush_appends_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = TraceRecorder(path, deterministic=True)
        rec.emit("a", "x")
        rec.flush()
        rec.emit("a", "y")
        rec.flush()
        rec.flush()  # idempotent: nothing pending
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["event"] == "y"

    def test_forked_child_emissions_dropped(self):
        rec = TraceRecorder(None)
        rec._pid = rec._pid + 1  # simulate fork inheritance
        rec.emit("a", "x")
        assert rec.events == []


class TestAmbientState:
    def test_disabled_by_default(self):
        assert active_recorder() is None
        assert metrics() is NULL_REGISTRY
        assert not metrics_enabled()

    def test_set_recorder_returns_previous(self):
        rec = TraceRecorder(None)
        assert set_recorder(rec) is None
        assert active_recorder() is rec
        assert set_recorder(None) is rec

    def test_enable_disable_metrics(self):
        reg = enable_metrics()
        assert metrics() is reg
        assert metrics_enabled()
        disable_metrics()
        assert metrics() is NULL_REGISTRY

    def test_collecting_installs_and_restores(self):
        outer = enable_metrics()
        outer.counter("outer").inc()
        with collecting() as inner:
            metrics().counter("inner").inc()
            assert metrics() is inner
        assert metrics() is outer
        assert inner.counter("inner").value == 1
        assert "inner" not in outer.names()
        disable_metrics()

    def test_suspended_blanks_everything(self, recorder, registry):
        with suspended():
            assert active_recorder() is None
            assert metrics() is NULL_REGISTRY
            recorder_inside = active_recorder()
        assert recorder_inside is None
        assert active_recorder() is recorder
        assert metrics() is registry


class TestWorkerCapture:
    def test_worker_spec_none_when_disabled(self):
        assert worker_spec() is None

    def test_worker_spec_ships_trace_config(self, recorder):
        recorder.sample_every = 5
        spec = worker_spec()
        assert spec == {"trace": True, "metrics": False,
                        "profile": False,
                        "sample_every": 5, "deterministic": True}

    def test_worker_spec_ships_metrics_only_when_asked(self):
        enable_metrics()  # default: parent-side only
        assert worker_spec() is None
        disable_metrics()
        enable_metrics(ship_to_workers=True)
        spec = worker_spec()
        assert spec == {"trace": False, "metrics": True,
                        "profile": False,
                        "sample_every": 0, "deterministic": False}
        disable_metrics()

    def test_chunk_capture_none_is_identity(self):
        with chunk_capture(None) as wrap:
            assert wrap([1, 2]) == [1, 2]

    def test_chunk_capture_collects_events_and_metrics(self):
        spec = {"trace": True, "metrics": True, "sample_every": 0,
                "deterministic": True}
        with chunk_capture(spec) as wrap:
            active_recorder().emit("t", "e", k=1)
            metrics().counter("t.n").inc(3)
            chunk = wrap(["r0"])
        assert isinstance(chunk, ObsChunk)
        assert chunk.results == ["r0"]
        assert chunk.events[0]["event"] == "e"
        assert chunk.metrics["counters"]["t.n"] == 3
        # Prior (disabled) state restored.
        assert active_recorder() is None
        assert metrics() is NULL_REGISTRY

    def test_ingest_chunk_folds_into_parent(self, recorder, registry):
        chunk = ObsChunk(results=[1, 2],
                         events=[{"seq": 0, "layer": "w", "event": "x"}],
                         metrics={"counters": {"w.n": 4}})
        assert ingest_chunk(chunk) == [1, 2]
        assert recorder.events[-1]["event"] == "x"
        assert registry.counter("w.n").value == 4

    def test_ingest_chunk_passes_plain_results_through(self):
        assert ingest_chunk([3, 4]) == [3, 4]

    def test_trial_correlation_id_deterministic(self):
        a = trial_correlation_id(42, 3)
        assert a == trial_correlation_id(42, 3)
        assert a.startswith("t00003-")
        assert a != trial_correlation_id(42, 4)
        assert a != trial_correlation_id(43, 3)


class TestObsSession:
    def test_writes_trace_and_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ObsSession(trace_path=path, manifest_kind="test",
                        manifest_config={"k": 1}, seed=7) as session:
            active_recorder().emit("mac", "demote", node="sta0")
            metrics().counter("mac.demotions").inc()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "demote"
        # Final event carries the merged metrics snapshot.
        assert events[-1]["layer"] == "obs"
        assert events[-1]["metrics"]["counters"]["mac.demotions"] == 1
        manifest = json.loads((tmp_path / "run.jsonl.manifest.json").read_text())
        assert manifest["kind"] == "test"
        assert manifest["seed"] == 7
        assert manifest["n_events"] == 2
        assert session.manifest_path.endswith(".manifest.json")
        # Ambient state restored.
        assert active_recorder() is None
        assert not metrics_enabled()

    def test_truncates_stale_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("stale\n")
        with ObsSession(trace_path=path):
            pass
        assert "stale" not in path.read_text()

    def test_metrics_only_session_writes_nothing(self, tmp_path):
        with ObsSession(metrics_on=True) as session:
            metrics().counter("x").inc()
        assert session.registry.counter("x").value == 1
        assert session.manifest_path is None
        assert list(tmp_path.iterdir()) == []

    def test_no_manifest_on_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with ObsSession(trace_path=path):
                raise RuntimeError("boom")
        assert not (tmp_path / "run.jsonl.manifest.json").exists()
        assert active_recorder() is None
