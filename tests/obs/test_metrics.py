"""MetricsRegistry: instruments, scopes, merging, and serialisation."""

import pickle

import pytest

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        other = Counter(2)
        c.merge(other)
        assert c.value == 7

    def test_gauge_keeps_last_write(self):
        g = Gauge()
        g.set(3)
        g.set(9)
        assert g.value == 9 and g.writes == 2

    def test_gauge_merge_prefers_written(self):
        g = Gauge()
        g.set(1)
        g.merge(Gauge())  # unwritten: must not clobber
        assert g.value == 1
        fresh = Gauge()
        fresh.set(5)
        g.merge(fresh)
        assert g.value == 5 and g.writes == 2

    def test_histogram_buckets_and_mean(self):
        h = Histogram(edges=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3
        assert h.mean == pytest.approx((0.5 + 5.0 + 50.0) / 3)

    def test_histogram_merge_requires_same_edges(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(2.0,))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_histogram_merge_sums(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.counts == [1, 1] and a.count == 2

    def test_timer_records_spans(self):
        t = Timer()
        with t.time():
            pass
        t.observe(0.5)
        assert t.count == 2
        assert t.max >= 0.5
        assert 0 <= t.min <= 0.5
        assert t.mean == pytest.approx(t.total / 2)

    def test_timer_merge(self):
        a, b = Timer(), Timer()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2 and a.total == 4.0
        assert a.min == 1.0 and a.max == 3.0

    def test_empty_timer_serialises_cleanly(self):
        t = Timer()
        data = t.to_value()
        assert data["min"] == 0.0  # not inf — must stay JSON-clean
        restored = Timer.from_value(data)
        restored.observe(2.0)
        assert restored.min == 2.0  # inf sentinel restored


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.timer("a")

    def test_scope_prefixes_into_shared_store(self):
        reg = MetricsRegistry()
        reg.scope("phy").counter("crc").inc()
        reg.scope("phy").scope("rte").counter("x").inc(2)
        assert reg.counter("phy.crc").value == 1
        assert reg.counter("phy.rte.x").value == 2
        assert reg.names() == ["phy.crc", "phy.rte.x"]

    def test_merge_sums_and_copies(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n").inc()
        worker.counter("n").inc(2)
        worker.timer("t").observe(1.5)
        parent.merge(worker)
        assert parent.counter("n").value == 3
        assert parent.timer("t").count == 1
        # The merged-in instrument is a copy: later worker mutations must
        # not alias into the parent.
        worker.timer("t").observe(9.0)
        assert parent.timer("t").count == 1

    def test_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x").set(1)
        with pytest.raises(TypeError, match="cannot merge"):
            a.merge(b)

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set("pool-4")
        reg.histogram("h", edges=(1.0,)).observe(0.2)
        reg.timer("t").observe(0.25)
        restored = MetricsRegistry.from_dict(reg.to_dict())
        assert restored.to_dict() == reg.to_dict()

    def test_merge_dict(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("w").inc(7)
        parent.merge_dict(worker.to_dict())
        assert parent.counter("w").value == 7

    def test_pickle_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.timer("t").observe(0.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.to_dict() == reg.to_dict()


class TestNullFastPath:
    def test_null_registry_hands_out_shared_noop(self):
        assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.timer("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.scope("phy") is NULL_REGISTRY
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.to_dict() == {}

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.inc(5)
        NULL_INSTRUMENT.set(3)
        NULL_INSTRUMENT.observe(1.0)
        with NULL_INSTRUMENT.time():
            pass

    def test_null_registry_merge_is_noop(self):
        real = MetricsRegistry()
        real.counter("x").inc()
        NULL_REGISTRY.merge(real)
        NULL_REGISTRY.merge_dict(real.to_dict())
        assert NULL_REGISTRY.to_dict() == {}
