"""SLO spec parsing and watchdog evaluation semantics.

A spec string *describes the breach condition*: ``goodput_bps<2e6``
breaches when the latest goodput drops below 2 Mbit/s. Kinds: latest
value (threshold), rolling mean (``mean:``/``@N``), per-epoch slope
(``trend:``). Policies: ``log`` (default), ``checkpoint``, ``drain``.
"""

import pytest

from repro.obs.slo import (
    SloSpec,
    SloWatchdog,
    read_health,
    write_health,
)


class TestSpecParsing:
    @pytest.mark.parametrize("text", [
        "goodput_bps<2e6",
        "collisions>100",
        "mean:goodput_bps<2e6@5",
        "trend:goodput_bps<-1e5@5!drain",
        "jain_fairness<=0.5!checkpoint",
    ])
    def test_describe_round_trips(self, text):
        spec = SloSpec.parse(text)
        assert SloSpec.parse(spec.describe()) == spec

    def test_threshold_defaults(self):
        spec = SloSpec.parse("goodput_bps<2e6")
        assert spec.kind == "threshold"
        assert spec.window == 1
        assert spec.policy == "log"

    def test_window_via_prefix(self):
        spec = SloSpec.parse("mean:goodput_bps<2e6@5")
        assert spec.kind == "window"
        assert spec.window == 5

    def test_window_via_at_alone(self):
        assert SloSpec.parse("goodput_bps<2e6@3").kind == "window"

    def test_trend_default_window(self):
        assert SloSpec.parse("trend:goodput_bps<0").window == 2

    def test_policy_suffix(self):
        assert SloSpec.parse("goodput_bps<1!drain").policy == "drain"

    @pytest.mark.parametrize("bad", [
        "", "goodput_bps", "goodput_bps<", "<2e6", "goodput_bps=2e6",
        "goodput_bps<2e6!explode", "trend:goodput_bps<0@1",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)

    def test_spec_instances_pass_through_watchdog(self):
        spec = SloSpec.parse("goodput_bps<1")
        assert SloWatchdog([spec]).specs == (spec,)


class TestWatchdogEvaluation:
    def test_threshold_breaches_on_latest(self):
        dog = SloWatchdog(["goodput_bps<100"])
        assert dog.observe(0, {"goodput_bps": 150.0}) == []
        breaches = dog.observe(1, {"goodput_bps": 50.0})
        assert len(breaches) == 1
        assert breaches[0].value == 50.0
        assert breaches[0].epoch == 1

    def test_missing_metric_is_not_a_breach(self):
        dog = SloWatchdog(["goodput_bps<100"])
        assert dog.observe(0, {"collisions": 5}) == []

    def test_window_needs_full_history(self):
        dog = SloWatchdog(["mean:goodput_bps<100@3"])
        assert dog.observe(0, {"goodput_bps": 10.0}) == []
        assert dog.observe(1, {"goodput_bps": 10.0}) == []
        breaches = dog.observe(2, {"goodput_bps": 10.0})
        assert len(breaches) == 1
        assert breaches[0].value == pytest.approx(10.0)

    def test_window_means(self):
        dog = SloWatchdog(["mean:goodput_bps<100@2"])
        dog.observe(0, {"goodput_bps": 250.0})
        # mean(250, 50) = 150: no breach even though the latest is low.
        assert dog.observe(1, {"goodput_bps": 50.0}) == []

    def test_trend_slope(self):
        dog = SloWatchdog(["trend:goodput_bps<-50@3"])
        dog.observe(0, {"goodput_bps": 300.0})
        dog.observe(1, {"goodput_bps": 200.0})
        breaches = dog.observe(2, {"goodput_bps": 100.0})
        assert len(breaches) == 1
        assert breaches[0].value == pytest.approx(-100.0)

    def test_seed_history_resumes_windows(self):
        """A resumed watchdog re-fed prior det samples must evaluate
        window rules exactly as an uninterrupted one."""
        straight = SloWatchdog(["mean:goodput_bps<100@3"])
        for epoch, g in enumerate([10.0, 10.0]):
            straight.observe(epoch, {"goodput_bps": g})

        resumed = SloWatchdog(["mean:goodput_bps<100@3"])
        resumed.seed_history([{"goodput_bps": 10.0}, {"goodput_bps": 10.0}])
        assert len(resumed.observe(2, {"goodput_bps": 10.0})) \
            == len(straight.observe(2, {"goodput_bps": 10.0})) == 1

    def test_status_and_policies(self):
        dog = SloWatchdog(["goodput_bps<100",
                           "collisions>10!drain"])
        assert dog.status() == "ok"
        dog.observe(0, {"goodput_bps": 50.0, "collisions": 0})
        assert dog.status() == "degraded"
        assert not dog.wants_drain()
        assert not dog.wants_checkpoint()
        dog.observe(1, {"goodput_bps": 500.0, "collisions": 99})
        assert dog.status() == "breached"
        assert dog.wants_drain()
        assert dog.wants_checkpoint()
        dog.observe(2, {"goodput_bps": 500.0, "collisions": 0})
        assert dog.status() == "ok"

    def test_checkpoint_policy_without_drain(self):
        dog = SloWatchdog(["goodput_bps<100!checkpoint"])
        dog.observe(0, {"goodput_bps": 1.0})
        assert dog.wants_checkpoint()
        assert not dog.wants_drain()


class TestHealthFile:
    def test_round_trip(self, tmp_path):
        dog = SloWatchdog(["goodput_bps<100"])
        dog.observe(4, {"goodput_bps": 50.0})
        write_health(tmp_path, dog.health_payload(
            epoch=4, det={"goodput_bps": 50.0}, epochs_completed=5))
        health = read_health(tmp_path)
        assert health["status"] == "degraded"
        assert health["epoch"] == 4
        assert health["epochs_completed"] == 5
        assert health["breaches"][0]["metric"] == "goodput_bps"
        assert health["slos"] == ["goodput_bps<100"]

    def test_read_missing_is_none(self, tmp_path):
        assert read_health(tmp_path) is None

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        dog = SloWatchdog([])
        write_health(tmp_path, dog.health_payload(
            epoch=0, det={}, epochs_completed=1))
        assert (tmp_path / "health.json").exists()
        assert not (tmp_path / "health.json.tmp").exists()
