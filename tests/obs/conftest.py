"""Fixtures for the observability suite: every test leaves the ambient
recorder/registry exactly as it found them (disabled, for the rest of the
test run)."""

import pytest

from repro.obs.trace import (
    TraceRecorder,
    active_recorder,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    set_recorder,
)


@pytest.fixture(autouse=True)
def _pristine_ambient_state():
    """Fail loudly if a test leaks an installed recorder or registry."""
    yield
    leaked_recorder = active_recorder() is not None
    leaked_registry = metrics_enabled()
    set_recorder(None)
    disable_metrics()
    assert not leaked_recorder, "test leaked an ambient TraceRecorder"
    assert not leaked_registry, "test leaked an enabled MetricsRegistry"


@pytest.fixture
def recorder():
    """A buffering, deterministic recorder installed as the ambient one."""
    rec = TraceRecorder(None, deterministic=True)
    previous = set_recorder(rec)
    yield rec
    set_recorder(previous)


@pytest.fixture
def registry():
    """A fresh enabled metrics registry (worker shipping off)."""
    reg = enable_metrics()
    yield reg
    disable_metrics()
