"""The library-wide `repro` logger: silent by default, one CLI handler."""

import logging

from repro.obs.log import REPRO_LOGGER, configure_logging, get_logger


class TestGetLogger:
    def test_bare_and_module_names_map_to_same_logger(self):
        assert get_logger("runtime.cache") is get_logger("repro.runtime.cache")
        assert get_logger("runtime.cache").name == "repro.runtime.cache"

    def test_empty_name_is_root(self):
        assert get_logger() is REPRO_LOGGER
        assert get_logger("repro") is REPRO_LOGGER

    def test_null_handler_by_default(self):
        assert any(isinstance(h, logging.NullHandler)
                   for h in REPRO_LOGGER.handlers)


class TestConfigureLogging:
    def _cli_handlers(self):
        return [h for h in REPRO_LOGGER.handlers
                if getattr(h, "_repro_cli_handler", False)]

    def _cleanup(self):
        for handler in self._cli_handlers():
            REPRO_LOGGER.removeHandler(handler)
        REPRO_LOGGER.setLevel(logging.NOTSET)

    def test_attaches_single_handler_idempotently(self):
        try:
            configure_logging("INFO")
            configure_logging("debug")  # case-insensitive re-level, no stack
            handlers = self._cli_handlers()
            assert len(handlers) == 1
            assert handlers[0].level == logging.DEBUG
            assert REPRO_LOGGER.level == logging.DEBUG
        finally:
            self._cleanup()

    def test_emits_through_configured_handler(self, capsys):
        import io

        stream = io.StringIO()
        try:
            configure_logging("INFO", stream=stream)
            get_logger("runtime.cache").info("cache hit: %s", "k1")
            assert "cache hit: k1" in stream.getvalue()
            assert "repro.runtime.cache" in stream.getvalue()
        finally:
            self._cleanup()
