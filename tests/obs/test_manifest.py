"""Run manifests: provenance records and config hashing."""

import dataclasses
import json

import numpy as np

from repro.obs.manifest import config_hash, git_sha, write_manifest


@dataclasses.dataclass
class _Config:
    trials: int
    payload: tuple


class TestConfigHash:
    def test_none_is_none(self):
        assert config_hash(None) is None

    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_handles_dataclasses_tuples_numpy(self):
        digest = config_hash(_Config(trials=np.int64(3), payload=(1, 2)))
        assert digest == config_hash({"trials": 3, "payload": [1, 2]})


class TestGitSha:
    def test_returns_sha_or_none(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestWriteManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = write_manifest(
            path, kind="trials", seed=42, config={"trials": 8},
            metrics={"counters": {"n": 8}}, wall_seconds=1.5,
            cpu_seconds=1.2, trace_path="t.jsonl", n_events=3,
        )
        data = json.loads(path.read_text())
        assert data["kind"] == "trials"
        assert data["seed"] == 42
        assert data["config"] == {"trials": 8}
        assert data["config_hash"] == config_hash({"trials": 8})
        assert data["metrics"]["counters"]["n"] == 8
        assert data["n_events"] == 3
        assert data["python_version"]
        assert data["numpy_version"] == np.__version__
        assert manifest.kind == "trials"
        assert not path.with_suffix(".json.tmp").exists()

    def test_minimal(self, tmp_path):
        path = tmp_path / "m.json"
        write_manifest(path, kind="bench")
        data = json.loads(path.read_text())
        assert data["kind"] == "bench"
        assert data["seed"] is None
        assert data["config_hash"] is None
