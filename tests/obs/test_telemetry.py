"""The telemetry stream's contracts: segregation, merge, crash tails.

* ``det``/``wall`` segregation — the deterministic view carries only
  the epoch key and the ``det`` namespace, canonically serialised.
* :class:`TelemetrySeries` merge — any partition of a run's records,
  folded in any order, reproduces the single-shot series bit for bit
  (the hypothesis property below mirrors the ``DeploymentAggregate``
  sharding-plan test).
* Crash discipline — a truncated final line (what a hard kill leaves
  mid-append) is tolerated by readers and trimmed on resume; malformed
  lines anywhere else are corruption and raise.
* Disabled path — a soak without telemetry writes no telemetry
  artifacts and its record helpers stay off the hot path entirely.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetrySeries,
    append_telemetry_record,
    deterministic_view,
    deterministic_view_bytes,
    fault_occupancy,
    make_record,
    read_telemetry_records,
    telemetry_paths,
    trim_telemetry_records,
)


def _record(epoch, goodput=1e6, wall_s=0.5):
    return make_record(
        epoch=epoch,
        det={"goodput_bps": goodput, "transmissions": 10 * (epoch + 1)},
        wall={"wall_seconds": wall_s, "n_workers": 2},
    )


class TestRecordShape:
    def test_namespaces_are_segregated(self):
        record = _record(3)
        assert record["schema_version"] == TELEMETRY_SCHEMA
        assert record["epoch"] == 3
        assert set(record) == {"schema_version", "epoch", "det", "wall"}

    def test_deterministic_view_drops_wall(self):
        view = deterministic_view([_record(0), _record(1)])
        for entry in view:
            assert "wall" not in entry
            assert set(entry) == {"schema_version", "epoch", "det"}

    def test_det_bytes_ignore_wall_fields(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        append_telemetry_record(a, _record(0, wall_s=0.1))
        append_telemetry_record(b, _record(0, wall_s=99.9))
        assert deterministic_view_bytes(a) == deterministic_view_bytes(b)

    def test_det_bytes_differ_on_det_fields(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        append_telemetry_record(a, _record(0, goodput=1e6))
        append_telemetry_record(b, _record(0, goodput=2e6))
        assert deterministic_view_bytes(a) != deterministic_view_bytes(b)


class TestAppendReadTrim:
    def test_round_trip_in_order(self, tmp_path):
        for epoch in range(4):
            append_telemetry_record(tmp_path, _record(epoch))
        records = list(read_telemetry_records(tmp_path))
        assert [r["epoch"] for r in records] == [0, 1, 2, 3]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert list(read_telemetry_records(tmp_path)) == []

    def test_truncated_tail_is_tolerated(self, tmp_path):
        append_telemetry_record(tmp_path, _record(0))
        path = telemetry_paths(tmp_path)["telemetry"]
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "epoch": 1, "de')
        records = list(read_telemetry_records(tmp_path))
        assert [r["epoch"] for r in records] == [0]

    def test_garbage_tail_raises(self, tmp_path):
        append_telemetry_record(tmp_path, _record(0))
        path = telemetry_paths(tmp_path)["telemetry"]
        with open(path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(ValueError, match="malformed"):
            list(read_telemetry_records(tmp_path))

    def test_malformed_middle_raises(self, tmp_path):
        path = telemetry_paths(tmp_path)["telemetry"]
        append_telemetry_record(tmp_path, _record(0))
        with open(path, "a") as handle:
            handle.write('{"trunc\n')
        append_telemetry_record(tmp_path, _record(1))
        with pytest.raises(ValueError, match="malformed"):
            list(read_telemetry_records(tmp_path))

    def test_trim_drops_orphans_past_cursor(self, tmp_path):
        for epoch in range(5):
            append_telemetry_record(tmp_path, _record(epoch))
        assert trim_telemetry_records(tmp_path, 3) == 2
        assert [r["epoch"] for r in read_telemetry_records(tmp_path)] \
            == [0, 1, 2]

    def test_trim_drops_truncated_tail(self, tmp_path):
        append_telemetry_record(tmp_path, _record(0))
        path = telemetry_paths(tmp_path)["telemetry"]
        with open(path, "a") as handle:
            handle.write('{"epo')
        assert trim_telemetry_records(tmp_path, 5) == 1
        assert [r["epoch"] for r in read_telemetry_records(tmp_path)] == [0]

    def test_trim_missing_file_is_noop(self, tmp_path):
        assert trim_telemetry_records(tmp_path, 0) == 0


class TestSeriesMerge:
    def test_duplicate_epoch_rejected(self):
        series = TelemetrySeries([_record(0)])
        with pytest.raises(ValueError, match="duplicate"):
            series.append(_record(0))

    def test_out_of_order_appends_sort(self):
        series = TelemetrySeries([_record(2), _record(0), _record(1)])
        assert [r["epoch"] for r in series.records] == [0, 1, 2]

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), n=st.integers(1, 12))
    def test_any_partition_any_order_merges_identically(self, data, n):
        """Shard the run arbitrarily, permute the shards, fold — the
        result must be bit-identical to the single-shot series."""
        records = [_record(e, goodput=1e5 * (e + 1)) for e in range(n)]
        single = TelemetrySeries(records)

        # Partition the epochs into contiguous-free arbitrary buckets.
        n_shards = data.draw(st.integers(1, n), label="n_shards")
        assignment = data.draw(
            st.lists(st.integers(0, n_shards - 1), min_size=n, max_size=n),
            label="assignment")
        shards = [[] for _ in range(n_shards)]
        for record, shard in zip(records, assignment):
            shards[shard].append(record)
        order = data.draw(st.permutations(range(n_shards)), label="order")

        merged = TelemetrySeries()
        for index in order:
            merged.merge(TelemetrySeries(shards[index]))
        assert merged.records == single.records
        assert merged.det_bytes() == single.det_bytes()

    def test_from_directory_matches_reader(self, tmp_path):
        for epoch in range(3):
            append_telemetry_record(tmp_path, _record(epoch))
        series = TelemetrySeries.from_directory(tmp_path)
        assert len(series) == 3
        assert series.det_bytes() == deterministic_view_bytes(tmp_path)

    def test_tail(self):
        series = TelemetrySeries([_record(e) for e in range(5)])
        assert [r["epoch"] for r in series.tail(2)] == [3, 4]


class TestFaultOccupancy:
    def test_no_episodes_is_zero(self):
        assert fault_occupancy({"episodes": ()}, 1.0) == 0.0

    def test_single_window(self):
        schedule = {"episodes": [{"window": (0.2, 0.5)}]}
        assert fault_occupancy(schedule, 1.0) == pytest.approx(0.3)

    def test_overlapping_windows_union(self):
        schedule = {"episodes": [{"window": (0.0, 0.6)},
                                 {"window": (0.4, 0.8)}]}
        assert fault_occupancy(schedule, 1.0) == pytest.approx(0.8)

    def test_clamped_to_one(self):
        schedule = {"episodes": [{"window": (0.0, 5.0)}]}
        assert fault_occupancy(schedule, 1.0) == 1.0

    def test_canonical_json_is_stable(self):
        """The det view serialisation the identity gates byte-compare
        must be canonical: key order of the input dict cannot leak."""
        a = make_record(epoch=0, det={"b": 1, "a": 2}, wall={})
        b = make_record(epoch=0, det={"a": 2, "b": 1}, wall={})
        assert json.dumps(deterministic_view([a]), sort_keys=True) \
            == json.dumps(deterministic_view([b]), sort_keys=True)
