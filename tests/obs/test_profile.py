"""Cross-worker profiling: mergeable collectors, ambient state, no-op cost.

Mirrors the recorder/registry contracts ``test_noop_fastpath`` pins for
the other observability layers: disabled profiling is one pointer test
per call site, enabling it never perturbs what it measures (profiles are
wall-domain only), and worker-side snapshots fold with plain addition.
"""

import time

import pytest

from repro.obs.profile import (
    ProfileCollector,
    _NULL_CAPTURE,
    disable_profiling,
    enable_profiling,
    function_layer,
    profile_capture,
    profile_collector,
    profiling_enabled,
)


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with profiling disabled."""
    disable_profiling()
    yield
    disable_profiling()
    assert not profiling_enabled()


def _busy(n=2000):
    return sum(i * i for i in range(n))


class TestFunctionLayer:
    def test_repro_layers(self):
        key = "/w/src/repro/mac/protocols/fallback.py:112:_demote"
        assert function_layer(key) == "mac"
        assert function_layer("/w/src/repro/runtime/trials.py:10:f") \
            == "runtime"

    def test_top_level_module(self):
        assert function_layer("/w/src/repro/cli.py:5:main") == "cli"

    def test_non_repro_is_other(self):
        assert function_layer("/usr/lib/python3.11/json/decoder.py:1:d") \
            == "other"
        assert function_layer("~:0:<built-in method time.sleep>") == "other"


class TestCollector:
    def test_stage_accumulates(self):
        collector = ProfileCollector()
        collector.record_stage("chunk", 0.5, 0.4)
        collector.record_stage("chunk", 0.25, 0.2)
        entry = collector.stages["chunk"]
        assert entry["count"] == 2
        assert entry["wall_s"] == pytest.approx(0.75)
        assert entry["cpu_s"] == pytest.approx(0.6)

    def test_empty_snapshot_is_none(self):
        assert ProfileCollector().snapshot() is None
        assert ProfileCollector().to_manifest_section() is None

    def test_snapshot_merge_is_addition(self):
        a, b = ProfileCollector(), ProfileCollector()
        a.record_stage("chunk", 1.0, 0.9)
        b.record_stage("chunk", 2.0, 1.8)
        b.record_stage("item", 0.5, 0.4)
        merged = ProfileCollector()
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.stages["chunk"]["count"] == 2
        assert merged.stages["chunk"]["wall_s"] == pytest.approx(3.0)
        assert merged.stages["item"]["count"] == 1

    def test_merge_order_does_not_matter(self):
        a, b = ProfileCollector(), ProfileCollector()
        a.record_stage("chunk", 1.0, 1.0)
        b.record_stage("chunk", 2.0, 2.0)
        ab, ba = ProfileCollector(), ProfileCollector()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

    def test_merge_none_is_noop(self):
        collector = ProfileCollector()
        collector.merge_snapshot(None)
        assert collector.snapshot() is None


class TestAmbientState:
    def test_disabled_by_default(self):
        assert not profiling_enabled()
        assert profile_collector() is None

    def test_enable_disable_round_trip(self):
        collector = enable_profiling()
        assert profiling_enabled()
        assert profile_collector() is collector
        assert disable_profiling() is collector
        assert not profiling_enabled()

    def test_disabled_capture_is_shared_noop(self):
        assert profile_capture("anything") is _NULL_CAPTURE

    def test_disabled_capture_is_cheap(self):
        """~50k disabled-path spans; same guard style as the metrics
        no-op fast path — generous bound, catches per-call allocation."""
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with profile_capture("serve.epoch"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed / n < 20e-6


class TestStageCapture:
    def test_capture_records_stage_and_functions(self):
        collector = enable_profiling()
        with profile_capture("serve.epoch"):
            _busy()
        assert collector.stages["serve.epoch"]["count"] == 1
        assert collector.stages["serve.epoch"]["wall_s"] > 0
        assert collector.functions  # cProfile rows landed

    def test_nested_capture_records_timing_only(self):
        """cProfile cannot nest: the inner span keeps its stage timing
        but leaves function attribution to the outer profiler."""
        collector = enable_profiling()
        with profile_capture("outer"):
            with profile_capture("inner"):
                _busy()
        assert collector.stages["outer"]["count"] == 1
        assert collector.stages["inner"]["count"] == 1

    def test_stop_is_idempotent(self):
        collector = enable_profiling()
        capture = profile_capture("once").start()
        capture.stop()
        capture.stop()
        assert collector.stages["once"]["count"] == 1

    def test_manifest_section_shape(self):
        collector = enable_profiling()
        with profile_capture("serve.epoch"):
            _busy()
        section = collector.to_manifest_section()
        assert section["stages"]["serve.epoch"]["count"] == 1
        assert isinstance(section["layers"], dict)
        rows = section["top_functions"]
        assert rows and {"function", "ncalls", "tottime", "cumtime"} \
            <= set(rows[0])
