"""Library code must not print.

Diagnostics go through ``repro.obs.log`` (silent by default) or the
metrics/trace layer; only the CLI owns stdout. CI enforces the same
rule with ruff's T201 check — this test keeps it enforced locally
where ruff may not be installed.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The CLI is the one place allowed to talk to the user on stdout.
ALLOWED = {SRC / "cli.py"}

#: A call of the ``print`` builtin: not preceded by a word char or a dot
#: (so ``code_fingerprint(`` and ``obj.print(`` don't count).
PRINT_CALL = re.compile(r"(?<![\w.])print\(")


#: Only the logging facade itself may touch the stdlib logger factory —
#: everything else (the long-running serve/obs layers especially) must
#: go through ``repro.obs.log.get_logger`` so the silent-by-default
#: NullHandler policy holds everywhere.
LOG_FACADE = SRC / "obs" / "log.py"

RAW_LOGGING = re.compile(r"logging\.(getLogger|basicConfig)\(")


def test_no_print_calls_outside_cli():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if PRINT_CALL.search(code):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, "print() in library code:\n" + "\n".join(offenders)


def test_no_raw_logging_outside_facade():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path == LOG_FACADE:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if RAW_LOGGING.search(code):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "raw logging.getLogger/basicConfig outside repro.obs.log:\n"
        + "\n".join(offenders))
