"""Observability must be invisible when off — and inert when on.

Two guarantees, per the acceptance criteria:

* Disabled (the default) costs nothing measurable: the ambient
  accessors hand out shared no-op singletons and a hot loop of
  instrument calls stays within a generous per-call bound.
* Enabled instrumentation never perturbs physics: running the same
  PHY / MAC / deployment workload with a recorder and live metrics
  registry installed yields bit-identical results to a plain run,
  including under worker pools and fault plans.
"""

import time

import numpy as np
import pytest

from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import ObsSession, active_recorder, metrics


def _assert_obs_disabled():
    assert active_recorder() is None
    assert metrics() is NULL_REGISTRY


class TestDisabledFastPath:
    def test_disabled_is_the_default(self):
        _assert_obs_disabled()

    def test_noop_instrument_calls_are_cheap(self):
        """~200k disabled-path calls; generous bound so CI noise can't
        flake it, tight enough to catch an accidental allocation per call."""
        n = 200_000
        counter = metrics().counter  # what instrumented call-sites do
        start = time.perf_counter()
        for _ in range(n):
            counter("phy.crc_checks").inc()
        elapsed = time.perf_counter() - start
        assert elapsed / n < 10e-6, f"{elapsed / n * 1e6:.2f}us per no-op call"

    def test_noop_timer_context_is_cheap(self):
        n = 50_000
        timer = metrics().timer("runtime.chunk")
        start = time.perf_counter()
        for _ in range(n):
            with timer.time():
                pass
        elapsed = time.perf_counter() - start
        assert elapsed / n < 20e-6


def _traced(tmp_path, fn):
    """Run ``fn`` with a recorder + metrics registry installed, asserting
    instrumentation actually fired (otherwise the test proves nothing)."""
    with ObsSession(trace_path=tmp_path / "run.jsonl", metrics_on=True) as session:
        result = fn()
    assert len(session.recorder) > 0
    assert len(session.registry) > 0
    return result


class TestBitExactness:
    def test_phy_symbol_ber(self, tmp_path):
        from repro.analysis.phy_experiments import ber_by_symbol_index

        def run():
            return ber_by_symbol_index(payload_bytes=500, trials=3,
                                       use_rte=True, n_workers=1)

        plain, traced = run(), _traced(tmp_path, run)
        np.testing.assert_array_equal(plain.ber_per_symbol,
                                      traced.ber_per_symbol)
        assert plain.mean_ber == traced.mean_ber
        assert plain.crc_pass_rate == traced.crc_pass_rate
        assert plain.side_bit_error_rate == traced.side_bit_error_rate

    def test_phy_symbol_ber_worker_pool(self, tmp_path):
        from repro.analysis.phy_experiments import ber_by_symbol_index

        plain = ber_by_symbol_index(payload_bytes=500, trials=4, n_workers=1)
        traced = _traced(
            tmp_path,
            lambda: ber_by_symbol_index(payload_bytes=500, trials=4,
                                        n_workers=2),
        )
        np.testing.assert_array_equal(plain.ber_per_symbol,
                                      traced.ber_per_symbol)
        assert plain.mean_ber == traced.mean_ber

    def test_mac_degradation_under_faults(self, tmp_path):
        from repro.analysis.degradation import degradation_sweep

        def run():
            return degradation_sweep(ack_loss_rates=[0.1], bursty=True,
                                     num_stations=3, duration=1.0,
                                     trials=2, n_workers=2)

        plain, traced = run(), _traced(tmp_path, run)
        assert plain.keys() == traced.keys()
        for protocol in plain:
            assert plain[protocol] == traced[protocol], protocol

    def test_deployment(self, tmp_path):
        from repro.net.deployment import DeploymentConfig, simulate_deployment

        config = DeploymentConfig(n_aps=2, stas_per_ap=2, duration=1.0,
                                  with_background=False)

        def run():
            return simulate_deployment(config, n_workers=1, use_cache=False)

        plain, traced = run(), _traced(tmp_path, run)
        assert plain.to_dict() == traced.to_dict()

    def test_trace_sampling_does_not_perturb(self, tmp_path):
        """Per-symbol sampling emits extra events; physics must not move."""
        from repro.analysis.phy_experiments import ber_by_symbol_index

        def run():
            return ber_by_symbol_index(payload_bytes=500, trials=2,
                                       n_workers=1)

        plain = run()
        with ObsSession(trace_path=tmp_path / "s.jsonl", sample_every=1) as s:
            sampled = run()
        assert len(s.recorder) > 0
        np.testing.assert_array_equal(plain.ber_per_symbol,
                                      sampled.ber_per_symbol)

    @pytest.fixture(autouse=True)
    def _check_restored(self):
        yield
        _assert_obs_disabled()
