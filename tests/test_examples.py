"""Smoke tests: every shipped example must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name, argv=None):
    saved = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "decoded OK" in out
    assert "Sequential ACK timetable" in out


def test_ber_bias_demo(capsys):
    _run("ber_bias_demo.py")
    out = capsys.readouterr().out
    assert "standard" in out and "RTE" in out


def test_side_channel_demo(capsys):
    _run("side_channel_demo.py")
    out = capsys.readouterr().out
    assert "carpool!" in out


@pytest.mark.slow
def test_crowded_hotspot_small(capsys):
    _run("crowded_hotspot.py", ["6"])
    out = capsys.readouterr().out
    assert "Carpool" in out and "802.11" in out


def test_mixed_network(capsys):
    _run("mixed_network.py")
    out = capsys.readouterr().out
    assert "classified as carpool" in out
    assert "classified as legacy" in out


def test_mu_mimo_demo(capsys):
    _run("mu_mimo_demo.py")
    out = capsys.readouterr().out
    assert out.count("decoded OK") == 4


def test_trace_explorer(capsys):
    _run("trace_explorer.py")
    out = capsys.readouterr().out
    assert "7.63" in out


def test_rate_adaptation_demo(capsys):
    _run("rate_adaptation_demo.py")
    out = capsys.readouterr().out
    assert "QAM64" in out and "BPSK" in out


def test_reliable_link_demo(capsys):
    _run("reliable_link_demo.py")
    out = capsys.readouterr().out
    assert "every byte delivered" in out
