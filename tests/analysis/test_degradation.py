"""Graceful-degradation and RTE-resilience acceptance experiments.

These are the headline robustness claims, run at reduced scale:

* under bursty fades with periodic A-HDR outages, hardened
  Carpool-with-fallback sustains strictly higher throughput than the
  published (non-fallback) Carpool;
* the hardened RTE keeps tail BER in check where the naive estimator
  diverges.
"""

import math

import pytest

from repro.analysis.degradation import (
    DegradationPoint,
    degradation_sweep,
    make_degradation_plan,
    rte_burst_resilience,
)


class TestPlanConstruction:
    def test_clean_cell_has_empty_plan(self):
        assert not make_degradation_plan(0.0, bursty=False)

    def test_ack_loss_only(self):
        plan = make_degradation_plan(0.2)
        assert [s.kind for s in plan.specs] == ["ack_loss"]
        assert plan.specs[0].probability == 0.2

    def test_bursty_adds_fades_and_outage_windows(self):
        plan = make_degradation_plan(0.1, bursty=True, horizon=2.0)
        kinds = [s.kind for s in plan.specs]
        assert kinds.count("mac_burst") == 1
        outages = plan.of_kind("ahdr_corruption")
        assert len(outages) == math.ceil((2.0 - 0.2) / 0.4)
        # Windows are disjoint, certain, and salted apart.
        assert all(s.probability == 1.0 for s in outages)
        assert len({s.seed_salt for s in outages}) == len(outages)
        spans = sorted((s.start, s.stop) for s in outages)
        assert all(a_stop <= b_start
                   for (_, a_stop), (b_start, _) in zip(spans, spans[1:]))


class TestDegradationSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return degradation_sweep(
            ack_loss_rates=(0.1,), bursty=True, trials=1, duration=2.0,
            num_stations=12, seed=7, n_workers=1,
        )

    def test_structure(self, sweep):
        assert set(sweep) == {"Carpool", "Carpool-fallback", "802.11"}
        point = sweep["Carpool"][0]
        assert isinstance(point, DegradationPoint)
        assert point.ack_loss == 0.1 and point.bursty

    def test_fallback_beats_published_carpool_under_outages(self, sweep):
        """The headline claim: demotion converts outage drops back into
        delivered frames, strictly improving on naive Carpool."""
        naive = sweep["Carpool"][0]
        hardened = sweep["Carpool-fallback"][0]
        assert hardened.goodput_bps > naive.goodput_bps
        assert hardened.dropped_frames < naive.dropped_frames

    def test_fallback_drop_rate_near_unicast_floor(self, sweep):
        """Demotion should recover (nearly) the 802.11 drop level, not just
        nibble at Carpool's."""
        hardened = sweep["Carpool-fallback"][0]
        naive = sweep["Carpool"][0]
        unicast = sweep["802.11"][0]
        assert (hardened.dropped_frames - unicast.dropped_frames
                < 0.2 * (naive.dropped_frames - unicast.dropped_frames))


class TestRteResilience:
    def test_hardened_tail_flatter_than_naive(self):
        results = rte_burst_resilience(trials=6, seed=1, n_workers=1)
        naive, hardened = results["naive"], results["hardened"]
        assert hardened.tail_ber < naive.tail_ber
        assert hardened.tail_head_ratio < naive.tail_head_ratio
