import numpy as np
import pytest

from repro.analysis.location_sweep import ber_across_locations
from repro.analysis.testbed import OfficeTestbed


class TestLocationSweep:
    def test_shapes_and_bookkeeping(self):
        result = ber_across_locations(
            "QAM16-3/4", payload_bytes=600, trials_per_location=2, max_locations=3
        )
        assert result.locations_used == 3
        assert result.mean_ber_per_symbol.shape == result.std_ber_per_symbol.shape
        assert len(result.per_location_mean) == 3
        assert result.scheme == "Standard"

    def test_locations_differ(self):
        """Different spots see different SNRs, so their BERs differ."""
        result = ber_across_locations(
            "QAM64-3/4", payload_bytes=1000, trials_per_location=3, max_locations=6
        )
        values = list(result.per_location_mean.values())
        assert max(values) > min(values)

    def test_rte_improves_aggregate(self):
        # Only spots where QAM64 actually links (≥22 dB), as a real
        # measurement campaign would report; full 4 KB frames — RTE's
        # payoff is the *long*-frame tail (short frames barely drift, so
        # data-pilot noise would dominate there).
        std = ber_across_locations("QAM64-3/4", 4090, 3, use_rte=False,
                                   max_locations=3, min_snr_db=22.0)
        rte = ber_across_locations("QAM64-3/4", 4090, 3, use_rte=True,
                                   max_locations=3, min_snr_db=22.0)
        # RTE flattens the tail across locations, as in Fig. 13's bars.
        assert (rte.mean_ber_per_symbol[-10:].mean()
                < std.mean_ber_per_symbol[-10:].mean())

    def test_snr_floor_can_empty(self):
        with pytest.raises(ValueError):
            ber_across_locations("BPSK-1/2", 400, 1, min_snr_db=99.0)

    def test_snr_cap_applied(self):
        testbed = OfficeTestbed()
        result = ber_across_locations(
            "BPSK-1/2", 400, 2, testbed=testbed, max_locations=2, snr_cap_db=5.0
        )
        # At a 5 dB cap even BPSK errs noticeably.
        assert result.mean_ber > 1e-4

    def test_deterministic(self):
        a = ber_across_locations("QAM16-3/4", 600, 2, max_locations=2)
        b = ber_across_locations("QAM16-3/4", 600, 2, max_locations=2)
        np.testing.assert_array_equal(a.mean_ber_per_symbol, b.mean_ber_per_symbol)
