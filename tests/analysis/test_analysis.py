import numpy as np
import pytest

from repro.analysis import (
    LinkConfig,
    ber_by_symbol_index,
    calibrate_error_model,
    data_ber_with_side_channel,
    empirical_cdf,
    geometric_mean,
    mean_confidence_interval,
    side_channel_vs_data_ber,
    symbol_failure_from_ber,
)
from repro.channel import FadingProfile
from repro.mac.error_model import BerCurveErrorModel

CLEAN = LinkConfig(
    snr_db=30.0,
    power_magnitude=None,
    profile=FadingProfile(num_taps=1, ricean_k_db=40.0, coherence_time=np.inf),
    cfo_hz=0.0,
    sfo_ppm=0.0,
    symbol_duration=4e-6,
)


class TestStats:
    def test_mean_ci(self):
        mean, half = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half > 0

    def test_single_sample(self):
        assert mean_confidence_interval([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], confidence=0.5)

    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3, 1, 2, 2])
        assert xs.tolist() == [1, 2, 2, 3]
        assert ps[-1] == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([-1.0, 2.0])


class TestLinkConfig:
    def test_with_power_overrides_snr(self):
        cfg = LinkConfig(snr_db=20, power_magnitude=None)
        derived = cfg.with_power(0.1)
        assert derived.snr_db is None
        assert derived.power_magnitude == 0.1

    def test_channel_factory_deterministic(self):
        cfg = LinkConfig(seed=5)
        x = np.ones((4, 52), dtype=complex)
        y1 = cfg.channel("t").transmit(x)
        y2 = cfg.channel("t").transmit(x)
        np.testing.assert_allclose(y1, y2)


class TestPhyExperiments:
    def test_clean_link_near_zero_ber(self):
        result = ber_by_symbol_index("QPSK-1/2", 500, trials=3, link=CLEAN)
        assert result.mean_ber < 1e-3
        assert result.crc_pass_rate > 0.95
        assert result.ber_per_symbol.size == result.trials if False else True

    def test_rte_not_worse_on_clean_link(self):
        std = ber_by_symbol_index("QPSK-1/2", 500, trials=3, link=CLEAN, use_rte=False)
        rte = ber_by_symbol_index("QPSK-1/2", 500, trials=3, link=CLEAN, use_rte=True)
        assert rte.mean_ber <= std.mean_ber + 1e-3

    def test_side_channel_injection_harmless_on_clean_link(self):
        with_sc = data_ber_with_side_channel("QPSK-1/2", 0.2, trials=3,
                                             inject=True, link=CLEAN)
        without = data_ber_with_side_channel("QPSK-1/2", 0.2, trials=3,
                                             inject=False, link=CLEAN)
        assert with_sc == pytest.approx(without, abs=1e-3)

    def test_side_channel_clean(self):
        side, data = side_channel_vs_data_ber(2, 0.2, trials=3, link=CLEAN)
        assert side == 0.0
        assert data < 1e-3

    def test_invalid_scheme_bits(self):
        with pytest.raises(ValueError):
            side_channel_vs_data_ber(3, 0.1, trials=1)


class TestCalibration:
    def test_symbol_failure_monotone_in_ber(self):
        fails = symbol_failure_from_ber(np.array([1e-4, 1e-3, 1e-2]))
        assert np.all(np.diff(fails) > 0)
        assert fails.max() <= 0.5

    def test_calibrated_model_has_bias(self):
        model = calibrate_error_model(trials=6)
        assert isinstance(model, BerCurveErrorModel)
        assert model.bias_growth > 0
        # Standard tail must fail more than the RTE curve at depth.
        assert (model.symbol_error(100, rte=False)
                > model.symbol_error(100, rte=True) * 0.5)
