import pytest

from repro.analysis.efficiency import (
    carpool_exchange,
    mac_efficiency,
    single_frame_exchange,
)
from repro.mac.parameters import DEFAULT_PARAMETERS


class TestBudgets:
    def test_components_positive(self):
        budget = single_frame_exchange(300, DEFAULT_PARAMETERS)
        assert budget.contention > 0
        assert budget.headers > 0
        assert budget.payload > 0
        assert budget.acks > 0
        assert budget.total == pytest.approx(
            budget.contention + budget.headers + budget.payload + budget.acks
        )

    def test_efficiency_in_unit_interval(self):
        for nbytes in (50, 300, 1500):
            assert 0 < single_frame_exchange(nbytes, DEFAULT_PARAMETERS).efficiency < 1

    def test_larger_frames_more_efficient(self):
        small = single_frame_exchange(100, DEFAULT_PARAMETERS).efficiency
        large = single_frame_exchange(1500, DEFAULT_PARAMETERS).efficiency
        assert large > small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            single_frame_exchange(0, DEFAULT_PARAMETERS)
        with pytest.raises(ValueError):
            carpool_exchange(300, 0, DEFAULT_PARAMETERS)


class TestCarpoolAmortisation:
    def test_more_receivers_more_efficient(self):
        effs = [
            carpool_exchange(300, n, DEFAULT_PARAMETERS).efficiency
            for n in (1, 2, 4, 8)
        ]
        assert effs == sorted(effs)

    def test_single_receiver_carpool_close_to_legacy(self):
        """With one receiver Carpool only adds the A-HDR + SIG symbols."""
        legacy = single_frame_exchange(1500, DEFAULT_PARAMETERS)
        carpool = carpool_exchange(1500, 1, DEFAULT_PARAMETERS)
        assert carpool.efficiency == pytest.approx(legacy.efficiency, rel=0.1)
        assert carpool.efficiency < legacy.efficiency  # strictly pays A-HDR

    def test_paper_motivating_trend(self):
        """§1: efficiency degrades rapidly from 54 to 600 Mbit/s."""
        eff_54 = mac_efficiency(300, 54e6)
        eff_600 = mac_efficiency(300, 600e6)
        assert eff_600 < 0.2 * eff_54

    def test_carpool_gain_grows_with_rate(self):
        gains = [
            mac_efficiency(300, rate, carpool_receivers=8) / mac_efficiency(300, rate)
            for rate in (54e6, 600e6)
        ]
        assert gains[1] > gains[0] > 1.0
