"""Bit-identity at any worker count, with and without tracing.

The contract the zero-copy/batched execution layer must keep: every
experiment entry point — PHY Monte-Carlo, MAC sweeps, deployments —
returns the exact same numbers at 1, 2, or 4 workers, whether chunks run
through the batched executors or the scalar oracle, and an instrumented
run produces byte-identical traces while matching the plain run's
results.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.obs.trace import TraceRecorder, disable_metrics, set_recorder
from repro.runtime.trials import shutdown_pools

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(autouse=True)
def _fresh_pools():
    shutdown_pools()
    set_recorder(None)
    disable_metrics()
    yield
    shutdown_pools()
    set_recorder(None)
    disable_metrics()


def _traced(fn):
    recorder = TraceRecorder(None, deterministic=True)
    set_recorder(recorder)
    try:
        result = fn()
    finally:
        set_recorder(None)
    return result, json.dumps(recorder.events, sort_keys=True)


class TestPhyMonteCarlo:
    def _run(self, n_workers, **kwargs):
        from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

        return ber_by_symbol_index("QPSK-1/2", 400, trials=4,
                                   link=LinkConfig(seed=11),
                                   n_workers=n_workers, **kwargs)

    def test_identical_across_worker_counts(self):
        serial = self._run(1, batched=False)  # scalar oracle
        for w in WORKER_COUNTS:
            result = self._run(w)  # production batched path
            assert np.array_equal(serial.ber_per_symbol,
                                  result.ber_per_symbol), w
            assert serial.crc_pass_rate == result.crc_pass_rate, w
            assert serial.side_bit_error_rate == result.side_bit_error_rate, w

    def test_traced_runs_match_plain_at_any_worker_count(self):
        plain = self._run(1)
        reference_trace = None
        for w in (1, 2):
            result, trace = _traced(lambda: self._run(w))
            assert np.array_equal(plain.ber_per_symbol, result.ber_per_symbol)
            if reference_trace is None:
                reference_trace = trace
            assert trace == reference_trace, w


class TestMacSweep:
    def _config(self):
        from repro.mac.sweep import SweepConfig

        return SweepConfig(
            receiver_counts=(2, 3), payload_bytes=(256,), trials=2,
            duration=0.2, calibration_payload=400, calibration_trials=2,
        )

    def test_identical_across_worker_counts(self):
        from repro.mac.sweep import goodput_airtime_sweep

        serial = goodput_airtime_sweep(self._config(), n_workers=1)
        for w in WORKER_COUNTS:
            cells = goodput_airtime_sweep(self._config(), n_workers=w)
            assert [c.per_trial_goodput for c in cells] == \
                [c.per_trial_goodput for c in serial], w
            assert [c.mean_delay for c in cells] == \
                [c.mean_delay for c in serial], w


class TestDeployment:
    def _config(self):
        from repro.net.deployment import DeploymentConfig

        return DeploymentConfig(n_aps=4, stas_per_ap=2, duration=0.3,
                                seed=17, channels=1)

    def _run(self, n_workers):
        from repro.net.deployment import simulate_deployment

        return simulate_deployment(self._config(), n_workers=n_workers,
                                   use_cache=False)

    def test_identical_across_worker_counts(self):
        serial = self._run(1)
        for w in WORKER_COUNTS:
            assert self._run(w).to_dict() == serial.to_dict(), w

    def test_traced_runs_match_plain_at_any_worker_count(self):
        plain = self._run(1)
        reference_trace = None
        for w in (1, 2):
            result, trace = _traced(lambda: self._run(w))
            assert result.to_dict() == plain.to_dict(), w
            if reference_trace is None:
                reference_trace = trace
            assert trace == reference_trace, w

    def _run_sharded(self, n_workers, shards):
        from repro.net.deployment import simulate_deployment

        return simulate_deployment(self._config(), n_workers=n_workers,
                                   use_cache=False, shards=shards)

    def test_sharded_identical_to_unsharded_at_any_worker_count(self):
        # The streaming contract: worker-side reduction changes what
        # crosses the pipe, never the deployment-level numbers. Only the
        # per-cell breakdown (cells) is traded away.
        serial = self._run(1)
        expected = dict(serial.to_dict(), cells=None)
        for w in WORKER_COUNTS:
            for shards in (1, 2, 4):
                result = self._run_sharded(w, shards)
                assert result.cells == [], (w, shards)
                got = dict(result.to_dict(), cells=None)
                assert got == expected, (w, shards)

    def test_sharded_traced_runs_match_unsharded_trace(self):
        # Tracing bypasses worker-side reduction (per-cell results cross
        # the pipe so every cell event is captured); the trace must be
        # byte-identical to the unsharded run's, and the aggregate
        # numbers must still match the plain run.
        plain = self._run(1)
        expected = dict(plain.to_dict(), cells=None)
        _, reference_trace = _traced(lambda: self._run(1))
        for w in (1, 2):
            result, trace = _traced(lambda: self._run_sharded(w, 2))
            assert dict(result.to_dict(), cells=None) == expected, w
            assert trace == reference_trace, w
