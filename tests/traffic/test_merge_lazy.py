"""Properties of the lazy arrival merge and traffic-model determinism.

``iter_merge_arrivals`` is what lets the soak service stream an epoch's
per-station generators without materialising them; these tests pin the
merge's ordering contract (time-sorted, stable on ties, lazy) and the
determinism guarantees the epoch seeds rely on (same seed → identical
output; sibling child streams don't cross-contaminate).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.frames import Arrival
from repro.traffic import (
    LIBRARY,
    SIGCOMM08,
    active_sta_timeseries,
    cbr_downlink_arrivals,
    iter_merge_arrivals,
    merge_arrivals,
    trace_mixed_arrivals,
)
from repro.util.rng import RngStream

STAS = [f"sta{i}" for i in range(4)]


def _stream(times, tag):
    return [Arrival(time=t, source="ap", destination=tag, size_bytes=100)
            for t in times]


@st.composite
def _sorted_streams(draw):
    n_streams = draw(st.integers(0, 4))
    streams = []
    for _ in range(n_streams):
        times = sorted(draw(st.lists(
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            max_size=12)))
        streams.append(times)
    return streams


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(_sorted_streams())
    def test_sorted_and_complete(self, time_lists):
        streams = [_stream(ts, f"s{i}") for i, ts in enumerate(time_lists)]
        merged = list(iter_merge_arrivals(*streams))
        times = [a.time for a in merged]
        assert times == sorted(times)
        assert len(merged) == sum(len(s) for s in streams)

    @settings(max_examples=60, deadline=None)
    @given(_sorted_streams())
    def test_lazy_and_eager_agree(self, time_lists):
        streams = [_stream(ts, f"s{i}") for i, ts in enumerate(time_lists)]
        lazy = list(iter_merge_arrivals(*streams))
        eager = merge_arrivals(*streams)
        assert lazy == eager

    def test_merge_is_lazy(self):
        # Generator inputs must not be drained up front: pulling one
        # element consumes at most one element per input stream.
        pulled = []

        def gen(tag, times):
            for t in times:
                pulled.append((tag, t))
                yield Arrival(time=t, source="ap", destination=tag,
                              size_bytes=64)

        merged = iter_merge_arrivals(gen("a", [0.0, 5.0, 9.0]),
                                     gen("b", [1.0, 2.0, 3.0]))
        first = next(merged)
        assert first.time == 0.0
        assert len(pulled) <= 2  # one look-ahead element per stream

    def test_ties_are_stable_by_stream_order(self):
        a = _stream([1.0, 2.0], "first")
        b = _stream([1.0, 2.0], "second")
        merged = merge_arrivals(a, b)
        at_one = [x.destination for x in merged if x.time == 1.0]
        assert at_one == ["first", "second"]

    def test_single_and_empty_streams(self):
        only = _stream([0.5, 1.5], "solo")
        assert merge_arrivals(only) == only
        assert merge_arrivals() == []
        assert merge_arrivals([], only, []) == only

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16))
    def test_streaming_matches_list_merge_on_real_traffic(self, seed):
        a = cbr_downlink_arrivals(["sta0"], 1.0, 120, 80.0, RngStream(seed))
        b = cbr_downlink_arrivals(["sta1"], 1.0, 120, 80.0,
                                  RngStream(seed + 1))
        lazy = list(iter_merge_arrivals(iter(a), iter(b)))
        assert lazy == merge_arrivals(a, b)


class TestTrafficDeterminism:
    def test_active_sta_timeseries_same_seed_identical(self):
        a = active_sta_timeseries(500, RngStream(23))
        b = active_sta_timeseries(500, RngStream(23))
        assert (a == b).all()

    def test_active_sta_timeseries_different_seed_differs(self):
        a = active_sta_timeseries(500, RngStream(23))
        b = active_sta_timeseries(500, RngStream(24))
        assert (a != b).any()

    def test_active_sta_prefix_stable_under_longer_horizon(self):
        # Epoch population sampling reads a short horizon; extending the
        # horizon must not rewrite the prefix already consumed.
        short = active_sta_timeseries(50, RngStream(5))
        long = active_sta_timeseries(200, RngStream(5))
        assert (long[:50] == short).all()

    def test_trace_mixed_same_seed_identical(self):
        a = trace_mixed_arrivals(STAS, 20.0, RngStream(31), SIGCOMM08)
        b = trace_mixed_arrivals(STAS, 20.0, RngStream(31), SIGCOMM08)
        assert a == b

    def test_trace_mixed_model_changes_output(self):
        a = trace_mixed_arrivals(STAS, 20.0, RngStream(31), SIGCOMM08)
        b = trace_mixed_arrivals(STAS, 20.0, RngStream(31), LIBRARY)
        assert a != b

    def test_sibling_child_streams_do_not_cross_contaminate(self):
        # Consuming one named child must not perturb a sibling's draws —
        # the property the soak workload's churn/traffic split relies on.
        root = RngStream(77)
        list(itertools.islice(iter(root.child("churn").generator.random()
                                   for _ in range(10)), 10))
        after_use = root.child("traffic").generator.random()
        fresh = RngStream(77).child("traffic").generator.random()
        assert after_use == fresh

    def test_arrivals_unperturbed_by_sibling_consumption(self):
        root_a = RngStream(13)
        active_sta_timeseries(100, root_a)  # consumes child "active-stas"
        arrivals_after = trace_mixed_arrivals(STAS, 10.0, root_a, SIGCOMM08)
        arrivals_fresh = trace_mixed_arrivals(STAS, 10.0, RngStream(13),
                                              SIGCOMM08)
        assert arrivals_after == arrivals_fresh
