import numpy as np
import pytest

from repro.mac.frames import Direction
from repro.traffic import (
    LIBRARY,
    SIGCOMM04,
    SIGCOMM08,
    BradyModel,
    TraceModel,
    active_sta_timeseries,
    background_uplink_arrivals,
    cbr_downlink_arrivals,
    merge_arrivals,
    offered_load_bps,
    sample_frame_sizes,
    trace_mixed_arrivals,
    voip_downlink_arrivals,
    voip_uplink_arrivals,
)
from repro.util.rng import RngStream

STAS = [f"sta{i}" for i in range(5)]


class TestBradyModel:
    def test_frame_interval_10ms(self):
        """96 kbit/s peak at 120 B frames ⇒ one frame every 10 ms (§7.2.2)."""
        assert BradyModel().frame_interval == pytest.approx(0.010)

    def test_activity_factor(self):
        model = BradyModel()
        assert model.activity_factor == pytest.approx(1.0 / 2.35)

    def test_mean_load(self):
        model = BradyModel()
        assert model.mean_offered_load_bps() == pytest.approx(96000 / 2.35)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BradyModel(peak_rate_bps=0)
        with pytest.raises(ValueError):
            BradyModel(mean_on=0)


class TestVoipArrivals:
    def test_sorted_and_flagged(self):
        arrivals = voip_downlink_arrivals(STAS, 10.0, RngStream(0))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(a.delay_sensitive for a in arrivals)
        assert all(a.direction == Direction.DOWNLINK for a in arrivals)
        assert all(a.source == "ap" for a in arrivals)

    def test_offered_load_near_model_mean(self):
        model = BradyModel()
        arrivals = voip_downlink_arrivals(STAS, 200.0, RngStream(1), model)
        load = offered_load_bps(arrivals, 200.0)
        expected = len(STAS) * model.mean_offered_load_bps()
        assert load == pytest.approx(expected, rel=0.2)

    def test_uplink_direction(self):
        arrivals = voip_uplink_arrivals(STAS, 5.0, RngStream(2))
        assert all(a.direction == Direction.UPLINK for a in arrivals)
        assert all(a.destination == "ap" for a in arrivals)

    def test_on_off_structure(self):
        """Gaps between a single flow's frames are either ≈10 ms (ON) or
        long silences."""
        arrivals = voip_downlink_arrivals(["sta0"], 60.0, RngStream(3))
        gaps = np.diff([a.time for a in arrivals])
        on_gaps = gaps[gaps < 0.02]
        assert on_gaps.size > 0
        assert np.allclose(on_gaps, 0.010, atol=1e-9)
        assert (gaps > 0.1).any()  # silences exist

    def test_deterministic(self):
        a1 = voip_downlink_arrivals(STAS, 5.0, RngStream(4))
        a2 = voip_downlink_arrivals(STAS, 5.0, RngStream(4))
        assert [a.time for a in a1] == [a.time for a in a2]


class TestTraceModels:
    def test_downlink_ratios_match_fig1c(self):
        assert SIGCOMM04.downlink_ratio == 0.80
        assert SIGCOMM08.downlink_ratio == 0.834
        assert LIBRARY.downlink_ratio == 0.892

    def test_library_mostly_small_frames(self):
        """Fig. 1(b): >90 % of library frames below 300 B."""
        sizes = sample_frame_sizes(LIBRARY, 20000, RngStream(5))
        assert (sizes <= 300).mean() > 0.88

    def test_sigcomm_half_small_frames(self):
        """Fig. 1(b): >50 % of SIGCOMM frames below ≈300 B."""
        sizes = sample_frame_sizes(SIGCOMM08, 20000, RngStream(6))
        assert 0.45 < (sizes <= 300).mean() < 0.65

    def test_sizes_within_mtu(self):
        sizes = sample_frame_sizes(SIGCOMM08, 5000, RngStream(7))
        assert sizes.min() >= 1
        assert sizes.max() <= 1500

    def test_quantile_cdf_inverse(self):
        for u in (0.1, 0.5, 0.9):
            size = SIGCOMM08.quantile(u)
            assert SIGCOMM08.cdf(size) == pytest.approx(u, abs=1e-9)

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            TraceModel("bad", 1.5, ((100, 0.5), (1500, 1.0)))
        with pytest.raises(ValueError):
            TraceModel("bad", 0.8, ((100, 0.5), (1500, 0.9)))

    def test_active_sta_mean_matches_paper(self):
        """Fig. 1(a): mean ≈ 7.63 concurrently active STAs per AP."""
        counts = active_sta_timeseries(3000, RngStream(8))
        assert counts.mean() == pytest.approx(7.63, abs=0.8)
        assert counts.min() >= 0
        assert counts.std() > 0.5  # visible churn

    def test_mixed_trace_downlink_ratio(self):
        arrivals = trace_mixed_arrivals(STAS, 100.0, RngStream(9), LIBRARY)
        down = sum(a.size_bytes for a in arrivals if a.direction == Direction.DOWNLINK)
        total = sum(a.size_bytes for a in arrivals)
        assert down / total == pytest.approx(LIBRARY.downlink_ratio, abs=0.03)


class TestBackground:
    def test_rates_match_sigcomm(self):
        """§7.2.2: TCP every 47 ms, UDP every 88 ms per client."""
        arrivals = background_uplink_arrivals(["sta0"], 300.0, RngStream(10))
        rate = len(arrivals) / 300.0
        expected = 1 / 0.047 + 1 / 0.088
        assert rate == pytest.approx(expected, rel=0.15)

    def test_intensity_scales_rate(self):
        base = background_uplink_arrivals(["sta0"], 100.0, RngStream(11))
        heavy = background_uplink_arrivals(["sta0"], 100.0, RngStream(11), intensity=3.0)
        assert len(heavy) == pytest.approx(3 * len(base), rel=0.25)

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            background_uplink_arrivals(["sta0"], 1.0, RngStream(0), intensity=0.0)


class TestFlows:
    def test_cbr_rate(self):
        arrivals = cbr_downlink_arrivals(STAS, 10.0, 120, 100.0, RngStream(12))
        assert len(arrivals) == pytest.approx(5 * 10 * 100, rel=0.05)

    def test_cbr_invalid(self):
        with pytest.raises(ValueError):
            cbr_downlink_arrivals(STAS, 1.0, 0, 100.0, RngStream(0))

    def test_cbr_jitter_boundary(self):
        """Regression: jitter >= 1 lets the gap hit zero or go negative,
        stalling or reversing the arrival clock — the boundary is open."""
        for bad in (1.0, 1.5, -0.1):
            with pytest.raises(ValueError):
                cbr_downlink_arrivals(STAS, 1.0, 120, 100.0, RngStream(0),
                                      jitter=bad)
        # Just inside the boundary the clock always advances: gaps stay
        # strictly positive and the stream stays time-sorted per STA.
        arrivals = cbr_downlink_arrivals(["sta0"], 5.0, 120, 200.0,
                                         RngStream(16), jitter=0.999)
        times = [a.time for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_cbr_zero_jitter_is_exact_cbr(self):
        arrivals = cbr_downlink_arrivals(["sta0"], 2.0, 120, 100.0,
                                         RngStream(17), jitter=0.0)
        gaps = [b.time - a.time for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(0.01, abs=1e-12) for g in gaps)

    def test_merge_sorted(self):
        a = cbr_downlink_arrivals(["sta0"], 2.0, 100, 50.0, RngStream(13))
        b = background_uplink_arrivals(["sta1"], 2.0, RngStream(14))
        merged = merge_arrivals(a, b)
        times = [x.time for x in merged]
        assert times == sorted(times)
        assert len(merged) == len(a) + len(b)

    def test_offered_load_by_direction(self):
        a = cbr_downlink_arrivals(["sta0"], 10.0, 125, 100.0, RngStream(15))
        load = offered_load_bps(a, 10.0, Direction.DOWNLINK)
        assert load == pytest.approx(100 * 125 * 8, rel=0.05)
        assert offered_load_bps(a, 10.0, Direction.UPLINK) == 0.0
