"""Property tests on the trace models and arrival generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    LIBRARY,
    SIGCOMM04,
    SIGCOMM08,
    background_uplink_arrivals,
    cbr_downlink_arrivals,
    merge_arrivals,
    sample_frame_sizes,
    voip_downlink_arrivals,
)
from repro.util.rng import RngStream

MODELS = (SIGCOMM04, SIGCOMM08, LIBRARY)


class TestQuantileProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2), st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_support(self, model_idx, u):
        model = MODELS[model_idx]
        size = model.quantile(u)
        sizes = [s for s, _ in model.size_points]
        assert sizes[0] <= size <= sizes[-1]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_monotone(self, model_idx, u1, u2):
        model = MODELS[model_idx]
        lo, hi = sorted((u1, u2))
        assert model.quantile(lo) <= model.quantile(hi)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2), st.integers(0, 2**16))
    def test_samples_within_support(self, model_idx, seed):
        model = MODELS[model_idx]
        sizes = sample_frame_sizes(model, 200, RngStream(seed))
        assert sizes.min() >= 1
        assert sizes.max() <= 1500


class TestArrivalProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16), st.integers(1, 6))
    def test_voip_sorted_and_in_horizon(self, seed, n_stas):
        stas = [f"sta{i}" for i in range(n_stas)]
        arrivals = voip_downlink_arrivals(stas, 5.0, RngStream(seed))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < 5.0 for t in times)
        assert {a.destination for a in arrivals} <= set(stas)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**16))
    def test_background_sorted_and_positive_sizes(self, seed):
        arrivals = background_uplink_arrivals(["sta0", "sta1"], 3.0, RngStream(seed))
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(a.size_bytes >= 1 for a in arrivals)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_merge_preserves_count_and_order(self, seed1, seed2):
        a = cbr_downlink_arrivals(["sta0"], 2.0, 100, 60.0, RngStream(seed1))
        b = voip_downlink_arrivals(["sta1"], 2.0, RngStream(seed2))
        merged = merge_arrivals(a, b)
        assert len(merged) == len(a) + len(b)
        times = [x.time for x in merged]
        assert times == sorted(times)
