import numpy as np
import pytest

from repro.channel.fading import (
    FadingProcess,
    FadingProfile,
    doppler_from_coherence_time,
    jakes_correlation,
)
from repro.util.rng import RngStream


class TestProfile:
    def test_tap_powers_normalised(self):
        for taps in (1, 3, 8):
            profile = FadingProfile(num_taps=taps)
            assert profile.tap_powers().sum() == pytest.approx(1.0)

    def test_tap_powers_decay(self):
        powers = FadingProfile(num_taps=5).tap_powers()
        assert np.all(np.diff(powers) < 0)

    def test_ricean_k_splits_power(self):
        profile = FadingProfile(num_taps=1, ricean_k_db=10.0)
        los2 = profile.los_amplitude() ** 2
        scattered = profile.scattered_powers()[0]
        assert los2 / scattered == pytest.approx(10.0)
        assert los2 + scattered == pytest.approx(1.0)

    def test_rayleigh_no_los(self):
        profile = FadingProfile(ricean_k_db=-np.inf)
        assert profile.los_amplitude() == 0.0

    def test_too_many_taps_rejected(self):
        with pytest.raises(ValueError):
            FadingProfile(num_taps=17)

    def test_zero_taps_rejected(self):
        with pytest.raises(ValueError):
            FadingProfile(num_taps=0)


class TestDoppler:
    def test_coherence_relation(self):
        assert doppler_from_coherence_time(0.423) == pytest.approx(1.0)

    def test_infinite_coherence_freezes(self):
        assert doppler_from_coherence_time(np.inf) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            doppler_from_coherence_time(0.0)

    def test_jakes_at_zero_lag(self):
        assert jakes_correlation(100.0, 0.0) == pytest.approx(1.0)

    def test_jakes_decreasing_initially(self):
        values = [jakes_correlation(50.0, lag) for lag in (0.0, 1e-3, 3e-3)]
        assert values[0] > values[1] > values[2]

    def test_jakes_matches_scipy_j0(self):
        from scipy.special import j0

        for fd, lag in [(30.0, 1e-3), (100.0, 2e-3), (10.0, 5e-3)]:
            assert jakes_correlation(fd, lag) == pytest.approx(
                float(j0(2 * np.pi * fd * lag)), abs=1e-6
            )


class TestProcess:
    def _process(self, profile=None, symbol_duration=4e-6, seed=0):
        return FadingProcess(
            profile or FadingProfile(), symbol_duration, RngStream(seed).child("fading")
        )

    def test_unit_average_power(self):
        proc = self._process()
        powers = []
        for _ in range(400):
            proc.reset()
            powers.append(np.abs(proc.taps()) ** 2)
        assert np.sum(np.mean(powers, axis=0)) == pytest.approx(1.0, rel=0.1)

    def test_static_channel_constant(self):
        proc = self._process(FadingProfile(coherence_time=np.inf))
        proc.reset()
        h0 = proc.frequency_response()
        for _ in range(100):
            proc.step()
        np.testing.assert_allclose(proc.frequency_response(), h0)

    def test_reset_changes_realisation(self):
        proc = self._process()
        proc.reset()
        h0 = proc.frequency_response()
        proc.reset()
        assert not np.allclose(proc.frequency_response(), h0)

    def test_correlation_decays_like_jakes(self):
        """Empirical autocorrelation at a given lag tracks J₀(2π f_d τ)."""
        profile = FadingProfile(num_taps=1, ricean_k_db=-np.inf, coherence_time=10e-3)
        fd = profile.doppler_hz()
        lag_symbols = 100
        dt = 40e-6
        num = 0.0
        den = 0.0
        proc = self._process(profile, dt, seed=3)
        for _ in range(600):
            proc.reset()
            h0 = proc.taps()[0]
            proc.step(lag_symbols * dt)
            h1 = proc.taps()[0]
            num += (h1 * np.conj(h0)).real
            den += abs(h0) ** 2
        expected = jakes_correlation(fd, lag_symbols * dt)
        assert num / den == pytest.approx(expected, abs=0.12)

    def test_frequency_selectivity_grows_with_taps(self):
        flat = self._process(FadingProfile(num_taps=1), seed=1)
        selective = self._process(
            FadingProfile(num_taps=8, ricean_k_db=-np.inf, delay_spread_taps=3.0), seed=1
        )
        flat.reset()
        selective.reset()
        flat_spread = np.std(np.abs(flat.frequency_response()))
        sel_spread = np.std(np.abs(selective.frequency_response()))
        assert flat_spread == pytest.approx(0.0, abs=1e-9)
        assert sel_spread > 0.05
