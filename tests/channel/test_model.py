import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile, snr_for_power
from repro.channel.awgn import add_awgn, noise_variance_for_snr
from repro.channel.path_loss import LogDistancePathLoss, link_snr_db
from repro.channel.power import POWER_MAGNITUDES
from repro.util.rng import RngStream

STATIC = FadingProfile(num_taps=1, ricean_k_db=60.0, coherence_time=np.inf)


class TestAwgn:
    def test_noise_variance(self):
        assert noise_variance_for_snr(10.0) == pytest.approx(0.1)
        assert noise_variance_for_snr(0.0, signal_power=2.0) == pytest.approx(2.0)

    def test_empirical_snr(self):
        rng = RngStream(0).child("n")
        clean = np.ones((200, 52), dtype=complex)
        noisy = add_awgn(clean, 10.0, rng)
        noise_power = np.mean(np.abs(noisy - clean) ** 2)
        assert noise_power == pytest.approx(0.1, rel=0.05)


class TestPowerCalibration:
    def test_monotone(self):
        snrs = [snr_for_power(p) for p in POWER_MAGNITUDES]
        assert snrs == sorted(snrs)

    def test_20log_rule(self):
        assert snr_for_power(0.2) - snr_for_power(0.1) == pytest.approx(6.02, abs=0.01)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            snr_for_power(0.0)


class TestPathLoss:
    def test_reference_loss(self):
        model = LogDistancePathLoss()
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_exponent(self):
        model = LogDistancePathLoss(exponent=3.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)

    def test_below_reference_clamped(self):
        model = LogDistancePathLoss()
        assert model.loss_db(0.1) == model.loss_db(1.0)

    def test_nonpositive_distance_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().loss_db(0.0)

    def test_link_snr_reasonable_indoors(self):
        # 3 m office link at full power: strong signal.
        snr = link_snr_db(3.0)
        assert 40.0 < snr < 80.0
        assert link_snr_db(10.0) < snr


class TestChannelModel:
    def test_requires_exactly_one_power_spec(self):
        with pytest.raises(ValueError):
            ChannelModel()
        with pytest.raises(ValueError):
            ChannelModel(snr_db=20, power_magnitude=0.1)

    def test_power_magnitude_sets_snr(self):
        model = ChannelModel(power_magnitude=0.2, rng=RngStream(0))
        assert model.snr_db == pytest.approx(snr_for_power(0.2))

    def test_output_shape(self):
        model = ChannelModel(snr_db=20, rng=RngStream(0))
        out = model.transmit(np.ones((10, 52), dtype=complex))
        assert out.shape == (10, 52)

    def test_trace_recorded(self):
        model = ChannelModel(snr_db=20, rng=RngStream(0))
        model.transmit(np.ones((7, 52), dtype=complex))
        assert model.last_trace.responses.shape == (7, 52)
        assert model.last_trace.snr_db == 20

    def test_high_snr_near_transparent_with_clean_profile(self):
        model = ChannelModel(
            snr_db=60, rng=RngStream(1), profile=STATIC, cfo_hz=0.0, sfo_ppm=0.0
        )
        x = np.ones((5, 52), dtype=complex)
        y = model.transmit(x)
        # Up to a common random phase, output ≈ input.
        phase = np.angle(np.sum(y[0]))
        np.testing.assert_allclose(y * np.exp(-1j * phase), x, atol=0.02)

    def test_cfo_ramp_visible(self):
        model = ChannelModel(
            snr_db=80, rng=RngStream(2), profile=STATIC, cfo_hz=1000.0, sfo_ppm=0.0
        )
        y = model.transmit(np.ones((4, 52), dtype=complex))
        step = np.angle(np.sum(y[1] * np.conj(y[0])))
        expected = 2 * np.pi * 1000.0 * model.symbol_duration
        assert step == pytest.approx(expected, rel=0.01)

    def test_sfo_ramp_grows_with_subcarrier_and_symbol(self):
        model = ChannelModel(
            snr_db=80, rng=RngStream(3), profile=STATIC, cfo_hz=0.0, sfo_ppm=40.0
        )
        n = 50
        y = model.transmit(np.ones((n, 52), dtype=complex))
        # Phase on the outermost subcarrier at the last symbol is largest.
        inner = abs(np.angle(y[n - 1, 26] * np.conj(y[0, 26])))  # logical +1
        outer = abs(np.angle(y[n - 1, 51] * np.conj(y[0, 51])))  # logical +26
        assert outer > inner

    def test_continuous_mode_keeps_state(self):
        model = ChannelModel(
            snr_db=80,
            rng=RngStream(4),
            profile=FadingProfile(coherence_time=np.inf),
            cfo_hz=0.0,
            sfo_ppm=0.0,
            continuous=True,
        )
        model.transmit(np.ones((3, 52), dtype=complex))
        h1 = model.last_trace.responses[-1]
        model.transmit(np.ones((3, 52), dtype=complex))
        h2 = model.last_trace.responses[0]
        np.testing.assert_allclose(h1, h2)

    def test_per_frame_mode_redraws(self):
        model = ChannelModel(snr_db=80, rng=RngStream(5), cfo_hz=0.0, sfo_ppm=0.0)
        model.transmit(np.ones((3, 52), dtype=complex))
        h1 = model.last_trace.responses[0]
        model.transmit(np.ones((3, 52), dtype=complex))
        h2 = model.last_trace.responses[0]
        assert not np.allclose(h1, h2)
