import numpy as np
import pytest

from repro.channel.fading import FadingProfile, jakes_correlation
from repro.channel.statistics import (
    empirical_pdp,
    estimate_ricean_k,
    level_crossing_rate,
    realise_tap_series,
    temporal_autocorrelation,
)
from repro.util.rng import RngStream


RAYLEIGH = FadingProfile(num_taps=1, ricean_k_db=-np.inf, coherence_time=10e-3)


def _series(profile, n=4000, dt=40e-6, seed=0):
    return realise_tap_series(profile, dt, n, RngStream(seed).child("s"))


class TestAutocorrelation:
    def test_unity_at_zero_lag(self):
        series = _series(RAYLEIGH)
        acf = temporal_autocorrelation(series, 10)
        assert acf[0] == pytest.approx(1.0)

    def test_matches_jakes_shape(self):
        """The realised process's ACF must track J₀(2π f_d τ)."""
        dt = 40e-6
        profile = RAYLEIGH
        fd = profile.doppler_hz()
        acfs = []
        for seed in range(6):
            acfs.append(temporal_autocorrelation(_series(profile, 6000, dt, seed), 200))
        acf = np.mean(acfs, axis=0)
        for lag in (50, 100, 200):
            expected = jakes_correlation(fd, lag * dt)
            assert acf[lag] == pytest.approx(expected, abs=0.12)

    def test_decays_for_finite_coherence(self):
        acf = temporal_autocorrelation(_series(RAYLEIGH, 6000), 300)
        assert acf[300] < 0.8 * acf[0]

    def test_lag_bounds(self):
        with pytest.raises(ValueError):
            temporal_autocorrelation(np.ones(10, dtype=complex), 10)


class TestPdp:
    def test_matches_profile(self):
        profile = FadingProfile(num_taps=4, delay_spread_taps=1.2,
                                ricean_k_db=-np.inf, coherence_time=np.inf)
        measured = empirical_pdp(profile, RngStream(1), realisations=800)
        expected = profile.tap_powers()
        np.testing.assert_allclose(measured, expected, rtol=0.2)

    def test_total_power_unity(self):
        profile = FadingProfile(num_taps=3)
        measured = empirical_pdp(profile, RngStream(2), realisations=800)
        assert measured.sum() == pytest.approx(1.0, rel=0.1)


class TestRiceanK:
    def test_rayleigh_near_zero(self):
        rng = RngStream(3).child("r")
        h = rng.complex_normal(scale=1.0, size=20000)
        k = estimate_ricean_k(np.abs(h) ** 2)
        assert k < 0.2

    def test_strong_los_high_k(self):
        rng = RngStream(4).child("r")
        k_true = 10.0  # linear
        los = np.sqrt(k_true / (k_true + 1))
        scatter = rng.complex_normal(scale=np.sqrt(1 / (k_true + 1)), size=20000)
        h = los + scatter
        k = estimate_ricean_k(np.abs(h) ** 2)
        assert k == pytest.approx(k_true, rel=0.3)

    def test_constant_envelope_infinite(self):
        assert estimate_ricean_k(np.ones(100)) == float("inf")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            estimate_ricean_k(np.array([1.0]))


class TestLevelCrossing:
    def test_counts_upward_crossings(self):
        envelope = np.array([0.5, 1.5, 0.5, 1.5, 0.5])
        rate = level_crossing_rate(envelope, threshold=1.0, sample_interval=1.0)
        assert rate == pytest.approx(2 / 4)

    def test_faster_fading_more_crossings(self):
        slow = FadingProfile(num_taps=1, ricean_k_db=-np.inf, coherence_time=50e-3)
        fast = FadingProfile(num_taps=1, ricean_k_db=-np.inf, coherence_time=5e-3)
        dt = 40e-6
        lcr_slow = level_crossing_rate(
            np.abs(_series(slow, 8000, dt, 5)), 1.0, dt
        )
        lcr_fast = level_crossing_rate(
            np.abs(_series(fast, 8000, dt, 5)), 1.0, dt
        )
        assert lcr_fast > 2 * lcr_slow
