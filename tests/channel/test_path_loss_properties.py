"""Property tests for the log-distance path-loss model.

The deployment layer (``repro.net``) derives every link budget from
``loss_db``/``link_snr_db``, so their shape invariants — loss never
decreases with distance, SNR never increases, free-space values are exact
at the reference distance — are pinned here.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.path_loss import LogDistancePathLoss, link_snr_db

_distances = st.floats(min_value=1e-3, max_value=1e4,
                       allow_nan=False, allow_infinity=False)
_exponents = st.floats(min_value=1.0, max_value=6.0)


class TestLossMonotonicity:
    @given(d1=_distances, d2=_distances, exponent=_exponents)
    def test_loss_monotone_non_decreasing_in_distance(self, d1, d2, exponent):
        model = LogDistancePathLoss(exponent=exponent)
        lo, hi = sorted((d1, d2))
        assert model.loss_db(lo) <= model.loss_db(hi)

    @given(d1=_distances, d2=_distances, exponent=_exponents)
    def test_snr_monotone_non_increasing_in_distance(self, d1, d2, exponent):
        model = LogDistancePathLoss(exponent=exponent)
        lo, hi = sorted((d1, d2))
        assert link_snr_db(lo, model=model) >= link_snr_db(hi, model=model)

    @given(distance=st.floats(max_value=0.0, allow_nan=False))
    def test_non_positive_distance_rejected(self, distance):
        with pytest.raises(ValueError):
            LogDistancePathLoss().loss_db(distance)


class TestReferenceDistanceExactness:
    @given(reference_loss=st.floats(min_value=20.0, max_value=80.0),
           exponent=_exponents,
           reference_distance=st.floats(min_value=0.1, max_value=10.0))
    def test_exact_loss_at_reference_distance(self, reference_loss, exponent,
                                              reference_distance):
        model = LogDistancePathLoss(
            reference_loss_db=reference_loss, exponent=exponent,
            reference_distance_m=reference_distance,
        )
        assert model.loss_db(reference_distance) == reference_loss

    @given(fraction=st.floats(min_value=1e-3, max_value=1.0))
    def test_loss_clamps_below_reference_distance(self, fraction):
        # Inside the reference distance the model reports the free-space
        # reference loss, never less.
        model = LogDistancePathLoss()
        assert model.loss_db(model.reference_distance_m * fraction) == (
            model.reference_loss_db
        )

    def test_exact_free_space_snr_at_reference(self):
        # 20 dBm TX − 40 dB reference loss − (−90 dBm) floor = 70 dB.
        assert link_snr_db(1.0) == pytest.approx(70.0, abs=1e-12)

    @given(distance=st.floats(min_value=1.0, max_value=1e3),
           exponent=_exponents)
    def test_decade_slope_is_ten_n_db(self, distance, exponent):
        model = LogDistancePathLoss(exponent=exponent)
        step = model.loss_db(10.0 * distance) - model.loss_db(distance)
        assert math.isclose(step, 10.0 * exponent, rel_tol=1e-9)
