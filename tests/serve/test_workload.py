"""Epoch workload streams: deterministic, random-access, and lazy.

The soak service never materialises a whole-run arrival list. These tests
pin the properties that make that safe: epoch seeds are a pure function
of (root seed, epoch index) reachable without iterating, epoch specs are
bit-stable across processes, and the lazy per-station CBR generators
mirror the eager :func:`repro.traffic.cbr_downlink_arrivals` draw for
draw.
"""

import dataclasses
import itertools

import pytest

from repro.serve.workload import (
    TRAFFIC_MODES,
    SoakWorkload,
    deployment_config,
    epoch_seed,
    epoch_spec,
    iter_epoch_arrivals,
    iter_epochs,
)
from repro.traffic import cbr_downlink_arrivals
from repro.util.rng import RngStream

_SMALL = SoakWorkload(seed=7, n_aps=3, max_stas_per_ap=6,
                      target_active_stas=2.5, epoch_duration=0.5)


class TestEpochSeeds:
    def test_deterministic(self):
        assert epoch_seed(42, 17) == epoch_seed(42, 17)

    def test_distinct_across_epochs(self):
        seeds = {epoch_seed(42, i) for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_across_roots(self):
        assert epoch_seed(1, 5) != epoch_seed(2, 5)

    def test_random_access_equals_iteration(self):
        # Jumping straight to epoch k (what --resume does) must mint the
        # same seed as walking there from epoch 0.
        walked = [spec.seed for spec in
                  itertools.islice(iter_epochs(_SMALL), 8)]
        jumped = [epoch_spec(_SMALL, i).seed for i in range(8)]
        assert walked == jumped


class TestEpochSpecs:
    def test_spec_is_deterministic(self):
        assert epoch_spec(_SMALL, 3) == epoch_spec(_SMALL, 3)

    def test_population_within_bounds(self):
        for i in range(30):
            spec = epoch_spec(_SMALL, i)
            assert 1 <= spec.stas_per_ap <= _SMALL.max_stas_per_ap

    def test_population_varies_with_churn(self):
        sizes = {epoch_spec(_SMALL, i).stas_per_ap for i in range(40)}
        assert len(sizes) > 1

    def test_iter_epochs_start_offset(self):
        from_three = next(iter(iter_epochs(_SMALL, start=3)))
        assert from_three == epoch_spec(_SMALL, 3)

    @pytest.mark.parametrize("traffic", TRAFFIC_MODES)
    def test_traffic_modes_mint_specs(self, traffic):
        workload = dataclasses.replace(_SMALL, traffic=traffic)
        spec = epoch_spec(workload, 0)
        assert spec.frame_bytes >= 40
        assert spec.frames_per_second > 0

    def test_invalid_traffic_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(_SMALL, traffic="bursty")

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(_SMALL, target_active_stas=99.0)


class TestLazyArrivals:
    def test_is_a_lazy_iterator(self):
        stream = iter_epoch_arrivals(_SMALL, epoch_spec(_SMALL, 0))
        assert iter(stream) is stream
        assert not isinstance(stream, (list, tuple))

    def test_time_sorted(self):
        times = [a.time for a in
                 iter_epoch_arrivals(_SMALL, epoch_spec(_SMALL, 1))]
        assert times == sorted(times)
        assert all(0.0 <= t for t in times)

    def test_deterministic_replay(self):
        spec = epoch_spec(_SMALL, 2)
        first = list(iter_epoch_arrivals(_SMALL, spec))
        second = list(iter_epoch_arrivals(_SMALL, spec))
        assert first == second

    def test_mirrors_eager_cbr_generator(self):
        # The lazy per-station generators must replay the eager CBR
        # model draw for draw: same child-stream names, same uniform
        # sequence, so the merged lazy stream equals the eager list.
        spec = epoch_spec(_SMALL, 4)
        lazy = list(iter_epoch_arrivals(_SMALL, spec, cell_index=2))
        names = [f"sta{i}" for i in range(spec.stas_per_ap)]
        eager = cbr_downlink_arrivals(
            names, spec.duration, spec.frame_bytes,
            spec.frames_per_second,
            RngStream(spec.seed).child("preview-cell2"),
        )
        assert lazy == eager

    def test_cells_draw_independent_streams(self):
        spec = epoch_spec(_SMALL, 0)
        cell0 = list(iter_epoch_arrivals(_SMALL, spec, cell_index=0))
        cell1 = list(iter_epoch_arrivals(_SMALL, spec, cell_index=1))
        assert cell0 != cell1


class TestDeploymentConfig:
    def test_config_carries_epoch_identity(self):
        spec = epoch_spec(_SMALL, 5)
        config = deployment_config(_SMALL, spec)
        assert config.seed == spec.seed
        assert config.stas_per_ap == spec.stas_per_ap
        assert config.duration == spec.duration
        assert config.n_aps == _SMALL.n_aps
        assert config.protocol == _SMALL.protocol

    def test_extra_faults_attached(self):
        from repro.serve.scheduler import rolling_fault_plan

        plan = rolling_fault_plan("mixed", 0, _SMALL.epoch_duration)
        spec = epoch_spec(_SMALL, 0)
        config = deployment_config(_SMALL, spec, extra_faults=plan)
        assert config.extra_faults is plan
        assert deployment_config(_SMALL, spec).extra_faults is None
