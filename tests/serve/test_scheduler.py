"""Rolling fault schedules: deterministic windows that slide with epochs."""

import json

import pytest

from repro.serve.scheduler import (
    FAULT_PROFILES,
    rolling_fault_plan,
    schedule_position,
)

_D = 2.0  # epoch duration used throughout


class TestRollingPlan:
    def test_none_profile_has_no_plan(self):
        assert rolling_fault_plan("none", 0, _D) is None
        assert rolling_fault_plan("none", 17, _D) is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            rolling_fault_plan("quakes", 0, _D)

    @pytest.mark.parametrize("profile",
                             [p for p in FAULT_PROFILES if p != "none"])
    def test_deterministic(self, profile):
        a = rolling_fault_plan(profile, 3, _D)
        b = rolling_fault_plan(profile, 3, _D)
        assert [s.stream_name for s in a.specs] \
            == [s.stream_name for s in b.specs]
        assert [(s.start, s.stop) for s in a.specs] \
            == [(s.start, s.stop) for s in b.specs]

    @pytest.mark.parametrize("profile",
                             [p for p in FAULT_PROFILES if p != "none"])
    def test_windows_inside_epoch(self, profile):
        for epoch in range(24):
            plan = rolling_fault_plan(profile, epoch, _D)
            for spec in plan.specs:
                assert 0.0 <= spec.start < spec.stop <= _D

    def test_window_slides_across_epochs(self):
        # Within one period the window's start must move monotonically —
        # the "rolling" in rolling fault plan.
        starts = [rolling_fault_plan("bursty-loss", e, _D).specs[0].start
                  for e in range(4)]  # bursty-loss period is 4 epochs
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)

    def test_window_is_periodic(self):
        first = rolling_fault_plan("bursty-loss", 1, _D).specs[0]
        later = rolling_fault_plan("bursty-loss", 5, _D).specs[0]
        assert (first.start, first.stop) == (later.start, later.stop)

    def test_seed_salt_differs_per_epoch(self):
        s0 = rolling_fault_plan("mixed", 0, _D).specs[0].stream_name
        s1 = rolling_fault_plan("mixed", 1, _D).specs[0].stream_name
        assert s0 != s1
        assert "soak-e0" in s0 and "soak-e1" in s1

    def test_salts_disjoint_from_coupling_plans(self):
        # Deployment coupling plans salt streams "ap{i}-w{k}"; soak
        # episodes must never collide with them inside FaultPlan.of.
        for spec in rolling_fault_plan("mixed", 2, _D).specs:
            assert "soak-e" in spec.stream_name
            assert not spec.stream_name.startswith("ap")


class TestSchedulePosition:
    def test_json_serialisable(self):
        pos = schedule_position("mixed", 7, _D)
        assert json.loads(json.dumps(pos)) == pos

    def test_reflects_epoch_and_profile(self):
        pos = schedule_position("deep-fade", 9, _D)
        assert pos["profile"] == "deep-fade"
        assert pos["epoch"] == 9
        assert pos["episodes"]

    def test_none_profile_has_empty_episodes(self):
        assert schedule_position("none", 3, _D)["episodes"] == []
