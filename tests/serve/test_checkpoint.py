"""Checkpoint atomicity, round-trips, identity checks, and orphan trim."""

import json
import os

import pytest

from repro.net.aggregate import DeploymentAggregate
from repro.net.deployment import DeploymentConfig, simulate_deployment
from repro.serve.checkpoint import (
    CHECKPOINT_SCHEMA,
    append_epoch_record,
    load_state,
    read_epoch_records,
    save_state,
    state_paths,
    trim_epoch_records,
)

_IDENTITY = {"kind": "soak", "workload": {"seed": 7}, "fault_profile": "none"}


def _live_aggregate():
    """A real aggregate with non-trivial exact-sum partials."""
    config = DeploymentConfig(n_aps=2, stas_per_ap=2, duration=0.3, seed=5,
                              protocol="Carpool", channels=1)
    _, agg = simulate_deployment(config, n_workers=1, use_cache=False,
                                 return_aggregate=True)
    return agg


def _save(directory, agg, next_epoch=3):
    return save_state(directory, identity=_IDENTITY, next_epoch=next_epoch,
                      cumulative_users=12, cumulative_frames=90,
                      aggregate=agg, schedule={"profile": "none"})


class TestStateRoundTrip:
    def test_round_trip_restores_aggregate_exactly(self, tmp_path):
        agg = _live_aggregate()
        _save(tmp_path, agg)
        state = load_state(tmp_path, identity=_IDENTITY)
        restored = state["aggregate"]
        assert restored.total_goodput_bps() == agg.total_goodput_bps()
        assert restored.jain_fairness() == agg.jain_fairness()
        assert restored.to_dict() == agg.to_dict()
        assert state["next_epoch"] == 3
        assert state["cumulative_users"] == 12
        assert state["cumulative_frames"] == 90

    def test_restored_aggregate_keeps_merging_exactly(self, tmp_path):
        # The point of serialising ExactSum partials: merge-after-resume
        # must equal merge-without-interruption, bitwise.
        a, b = _live_aggregate(), _live_aggregate()
        straight = DeploymentAggregate(track_stations=False)
        straight.merge(a)
        straight.merge(b)
        _save(tmp_path, a)
        resumed = load_state(tmp_path)["aggregate"]
        resumed.merge(b)
        assert resumed.to_dict() == straight.to_dict()

    def test_save_is_deterministic_bytes(self, tmp_path):
        agg = _live_aggregate()
        path = _save(tmp_path / "one", agg)
        path2 = _save(tmp_path / "two", agg)
        with open(path, "rb") as f1, open(path2, "rb") as f2:
            assert f1.read() == f2.read()

    def test_no_tmp_file_left_behind(self, tmp_path):
        _save(tmp_path, _live_aggregate())
        assert not os.path.exists(state_paths(tmp_path)["state"] + ".tmp")


class TestLoadGuards:
    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path / "nowhere")

    def test_identity_mismatch_refused(self, tmp_path):
        _save(tmp_path, _live_aggregate())
        other = {**_IDENTITY, "fault_profile": "mixed"}
        with pytest.raises(ValueError, match="identity mismatch"):
            load_state(tmp_path, identity=other)

    def test_schema_mismatch_refused(self, tmp_path):
        _save(tmp_path, _live_aggregate())
        path = state_paths(tmp_path)["state"]
        with open(path) as handle:
            state = json.load(handle)
        state["schema"] = CHECKPOINT_SCHEMA + 1
        with open(path, "w") as handle:
            json.dump(state, handle)
        with pytest.raises(ValueError, match="schema"):
            load_state(tmp_path)


class TestEpochRecords:
    def test_append_and_read_in_order(self, tmp_path):
        for epoch in range(4):
            append_epoch_record(tmp_path, {"epoch": epoch, "tx": epoch * 10})
        records = list(read_epoch_records(tmp_path))
        assert [r["epoch"] for r in records] == [0, 1, 2, 3]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert list(read_epoch_records(tmp_path)) == []

    def test_trim_drops_orphans_past_cursor(self, tmp_path):
        # A hard kill between record-append and state-rewrite leaves one
        # record ahead of the cursor; resume must drop exactly that.
        for epoch in range(5):
            append_epoch_record(tmp_path, {"epoch": epoch})
        dropped = trim_epoch_records(tmp_path, next_epoch=3)
        assert dropped == 2
        assert [r["epoch"] for r in read_epoch_records(tmp_path)] == [0, 1, 2]

    def test_trim_is_noop_when_consistent(self, tmp_path):
        for epoch in range(3):
            append_epoch_record(tmp_path, {"epoch": epoch})
        before = open(state_paths(tmp_path)["metrics"], "rb").read()
        assert trim_epoch_records(tmp_path, next_epoch=3) == 0
        after = open(state_paths(tmp_path)["metrics"], "rb").read()
        assert before == after
