"""The soak loop's headline contract: kill/resume is bit-identical.

``state.json`` and ``metrics.jsonl`` are pure functions of (workload,
fault profile, epochs completed) — so a run interrupted at any epoch
boundary and resumed, at any worker or shard count, must leave byte-for-
byte the files an uninterrupted run leaves. These tests enforce that by
literal byte comparison, which is the same check the CI soak-smoke job
runs across real processes and signals.
"""

import dataclasses
import json

import pytest

from repro.serve.checkpoint import state_paths
from repro.serve.service import SoakConfig, SoakSummary, run_soak
from repro.serve.workload import SoakWorkload

_WORKLOAD = SoakWorkload(seed=11, n_aps=2, max_stas_per_ap=4,
                         target_active_stas=2.0, epoch_duration=0.25,
                         channels=1)


def _config(tmp_path, name, **overrides):
    base = dict(workload=_WORKLOAD, fault_profile="none",
                checkpoint_dir=str(tmp_path / name), n_workers=1)
    base.update(overrides)
    return SoakConfig(**base)


def _artifact_bytes(directory):
    paths = state_paths(directory)
    with open(paths["state"], "rb") as handle:
        state = handle.read()
    with open(paths["metrics"], "rb") as handle:
        metrics = handle.read()
    with open(paths["manifest"]) as handle:
        manifest_hash = json.load(handle)["config_hash"]
    return state, metrics, manifest_hash


class TestKillResumeIdentity:
    def test_resume_is_bit_identical(self, tmp_path):
        straight = run_soak(_config(tmp_path, "straight", epochs=3))
        assert straight.epochs_completed == 3

        run_soak(_config(tmp_path, "resumed", epochs=2))
        resumed = run_soak(_config(tmp_path, "resumed", epochs=3,
                                   resume=True))
        assert resumed.epochs_completed == 3
        assert resumed.epochs_this_run == 1
        assert _artifact_bytes(tmp_path / "straight") \
            == _artifact_bytes(tmp_path / "resumed")

    def test_identity_invariant_to_workers_and_shards(self, tmp_path):
        straight = run_soak(_config(tmp_path, "serial", epochs=3))
        run_soak(_config(tmp_path, "sharded", epochs=1))
        sharded = run_soak(_config(tmp_path, "sharded", epochs=3,
                                   resume=True, n_workers=2, shards=2))
        assert sharded.cumulative_frames == straight.cumulative_frames
        assert _artifact_bytes(tmp_path / "serial") \
            == _artifact_bytes(tmp_path / "sharded")

    def test_identity_under_fault_profile(self, tmp_path):
        straight = run_soak(_config(tmp_path, "a", epochs=3,
                                    fault_profile="mixed"))
        run_soak(_config(tmp_path, "b", epochs=2, fault_profile="mixed"))
        resumed = run_soak(_config(tmp_path, "b", epochs=3, resume=True,
                                   fault_profile="mixed", shards=2))
        assert resumed.total_goodput_bps == straight.total_goodput_bps
        assert _artifact_bytes(tmp_path / "a") \
            == _artifact_bytes(tmp_path / "b")

    def test_faults_change_the_run(self, tmp_path):
        clean = run_soak(_config(tmp_path, "clean", epochs=3))
        faulty = run_soak(_config(tmp_path, "faulty", epochs=3,
                                  fault_profile="bursty-loss"))
        assert faulty.total_goodput_bps != clean.total_goodput_bps

    def test_sparse_checkpoint_cadence_converges(self, tmp_path):
        # checkpoint_every=2 rewrites state.json less often, but the
        # final checkpoint must land the same bytes as every-epoch.
        dense = run_soak(_config(tmp_path, "dense", epochs=4))
        sparse = run_soak(_config(tmp_path, "sparse", epochs=4,
                                  checkpoint_every=2))
        assert dense.epochs_completed == sparse.epochs_completed == 4
        assert _artifact_bytes(tmp_path / "dense") \
            == _artifact_bytes(tmp_path / "sparse")


class TestBudgets:
    def test_epoch_budget_is_absolute(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=2))
        again = run_soak(_config(tmp_path, "run", epochs=2, resume=True))
        assert again.epochs_this_run == 0
        assert again.epochs_completed == 2

    def test_user_budget_stops_deterministically(self, tmp_path):
        capped = run_soak(_config(tmp_path, "users", max_users=6))
        assert capped.cumulative_users >= 6
        # The stopping epoch depends only on the workload, so a rerun
        # under the same budget lands identically.
        rerun = run_soak(_config(tmp_path, "users2", max_users=6))
        assert rerun.epochs_completed == capped.epochs_completed
        assert rerun.cumulative_users == capped.cumulative_users

    def test_zero_epoch_budget_checkpoints_and_exits(self, tmp_path):
        summary = run_soak(_config(tmp_path, "zero", epochs=0))
        assert summary.epochs_completed == 0
        assert not summary.interrupted
        paths = state_paths(tmp_path / "zero")
        assert json.load(open(paths["state"]))["next_epoch"] == 0

    def test_wall_budget_marks_interrupted(self, tmp_path):
        summary = run_soak(_config(tmp_path, "wall", max_wall_seconds=0.0))
        assert summary.interrupted
        assert summary.epochs_this_run == 0


class TestGuards:
    def test_fresh_run_refuses_existing_checkpoint(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=1))
        with pytest.raises(ValueError, match="resume"):
            run_soak(_config(tmp_path, "run", epochs=2))

    def test_resume_refuses_different_workload(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=1))
        other = dataclasses.replace(_WORKLOAD, seed=99)
        with pytest.raises(ValueError, match="identity mismatch"):
            run_soak(_config(tmp_path, "run", epochs=2, resume=True,
                             workload=other))

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_soak(_config(tmp_path, "ghost", epochs=1, resume=True))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SoakConfig(workload=_WORKLOAD, epochs=-1)
        with pytest.raises(ValueError):
            SoakConfig(workload=_WORKLOAD, checkpoint_every=0)


class TestSummary:
    def test_summary_round_trips_to_json(self, tmp_path):
        summary = run_soak(_config(tmp_path, "run", epochs=2))
        assert isinstance(summary, SoakSummary)
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["epochs_completed"] == 2
        assert payload["config_hash"] == summary.config_hash
        assert payload["cumulative_users"] > 0
