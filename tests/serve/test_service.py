"""The soak loop's headline contract: kill/resume is bit-identical.

``state.json`` and ``metrics.jsonl`` are pure functions of (workload,
fault profile, epochs completed) — so a run interrupted at any epoch
boundary and resumed, at any worker or shard count, must leave byte-for-
byte the files an uninterrupted run leaves. These tests enforce that by
literal byte comparison, which is the same check the CI soak-smoke job
runs across real processes and signals.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.obs.slo import read_health
from repro.obs.telemetry import (
    deterministic_view_bytes,
    read_telemetry_records,
    telemetry_paths,
)
from repro.serve.checkpoint import state_paths
from repro.serve.service import SoakConfig, SoakSummary, run_soak
from repro.serve.workload import SoakWorkload

_WORKLOAD = SoakWorkload(seed=11, n_aps=2, max_stas_per_ap=4,
                         target_active_stas=2.0, epoch_duration=0.25,
                         channels=1)


def _config(tmp_path, name, **overrides):
    base = dict(workload=_WORKLOAD, fault_profile="none",
                checkpoint_dir=str(tmp_path / name), n_workers=1)
    base.update(overrides)
    return SoakConfig(**base)


def _artifact_bytes(directory):
    paths = state_paths(directory)
    with open(paths["state"], "rb") as handle:
        state = handle.read()
    with open(paths["metrics"], "rb") as handle:
        metrics = handle.read()
    with open(paths["manifest"]) as handle:
        manifest_hash = json.load(handle)["config_hash"]
    return state, metrics, manifest_hash


class TestKillResumeIdentity:
    def test_resume_is_bit_identical(self, tmp_path):
        straight = run_soak(_config(tmp_path, "straight", epochs=3))
        assert straight.epochs_completed == 3

        run_soak(_config(tmp_path, "resumed", epochs=2))
        resumed = run_soak(_config(tmp_path, "resumed", epochs=3,
                                   resume=True))
        assert resumed.epochs_completed == 3
        assert resumed.epochs_this_run == 1
        assert _artifact_bytes(tmp_path / "straight") \
            == _artifact_bytes(tmp_path / "resumed")

    def test_identity_invariant_to_workers_and_shards(self, tmp_path):
        straight = run_soak(_config(tmp_path, "serial", epochs=3))
        run_soak(_config(tmp_path, "sharded", epochs=1))
        sharded = run_soak(_config(tmp_path, "sharded", epochs=3,
                                   resume=True, n_workers=2, shards=2))
        assert sharded.cumulative_frames == straight.cumulative_frames
        assert _artifact_bytes(tmp_path / "serial") \
            == _artifact_bytes(tmp_path / "sharded")

    def test_identity_under_fault_profile(self, tmp_path):
        straight = run_soak(_config(tmp_path, "a", epochs=3,
                                    fault_profile="mixed"))
        run_soak(_config(tmp_path, "b", epochs=2, fault_profile="mixed"))
        resumed = run_soak(_config(tmp_path, "b", epochs=3, resume=True,
                                   fault_profile="mixed", shards=2))
        assert resumed.total_goodput_bps == straight.total_goodput_bps
        assert _artifact_bytes(tmp_path / "a") \
            == _artifact_bytes(tmp_path / "b")

    def test_faults_change_the_run(self, tmp_path):
        clean = run_soak(_config(tmp_path, "clean", epochs=3))
        faulty = run_soak(_config(tmp_path, "faulty", epochs=3,
                                  fault_profile="bursty-loss"))
        assert faulty.total_goodput_bps != clean.total_goodput_bps

    def test_sparse_checkpoint_cadence_converges(self, tmp_path):
        # checkpoint_every=2 rewrites state.json less often, but the
        # final checkpoint must land the same bytes as every-epoch.
        dense = run_soak(_config(tmp_path, "dense", epochs=4))
        sparse = run_soak(_config(tmp_path, "sparse", epochs=4,
                                  checkpoint_every=2))
        assert dense.epochs_completed == sparse.epochs_completed == 4
        assert _artifact_bytes(tmp_path / "dense") \
            == _artifact_bytes(tmp_path / "sparse")


class TestBudgets:
    def test_epoch_budget_is_absolute(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=2))
        again = run_soak(_config(tmp_path, "run", epochs=2, resume=True))
        assert again.epochs_this_run == 0
        assert again.epochs_completed == 2

    def test_user_budget_stops_deterministically(self, tmp_path):
        capped = run_soak(_config(tmp_path, "users", max_users=6))
        assert capped.cumulative_users >= 6
        # The stopping epoch depends only on the workload, so a rerun
        # under the same budget lands identically.
        rerun = run_soak(_config(tmp_path, "users2", max_users=6))
        assert rerun.epochs_completed == capped.epochs_completed
        assert rerun.cumulative_users == capped.cumulative_users

    def test_zero_epoch_budget_checkpoints_and_exits(self, tmp_path):
        summary = run_soak(_config(tmp_path, "zero", epochs=0))
        assert summary.epochs_completed == 0
        assert not summary.interrupted
        paths = state_paths(tmp_path / "zero")
        assert json.load(open(paths["state"]))["next_epoch"] == 0

    def test_wall_budget_marks_interrupted(self, tmp_path):
        summary = run_soak(_config(tmp_path, "wall", max_wall_seconds=0.0))
        assert summary.interrupted
        assert summary.epochs_this_run == 0


class TestGuards:
    def test_fresh_run_refuses_existing_checkpoint(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=1))
        with pytest.raises(ValueError, match="resume"):
            run_soak(_config(tmp_path, "run", epochs=2))

    def test_resume_refuses_different_workload(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=1))
        other = dataclasses.replace(_WORKLOAD, seed=99)
        with pytest.raises(ValueError, match="identity mismatch"):
            run_soak(_config(tmp_path, "run", epochs=2, resume=True,
                             workload=other))

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_soak(_config(tmp_path, "ghost", epochs=1, resume=True))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SoakConfig(workload=_WORKLOAD, epochs=-1)
        with pytest.raises(ValueError):
            SoakConfig(workload=_WORKLOAD, checkpoint_every=0)


class TestTelemetry:
    def test_artifacts_produced(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=3, telemetry=True,
                         slos=("goodput_bps<1",)))
        paths = telemetry_paths(tmp_path / "run")
        records = list(read_telemetry_records(tmp_path / "run"))
        assert Path(paths["telemetry"]).exists()
        assert [r["epoch"] for r in records] == [0, 1, 2]
        health = read_health(tmp_path / "run")
        assert health["status"] == "ok"
        assert health["epochs_completed"] == 3
        assert health["slos"] == ["goodput_bps<1"]

    def test_telemetry_is_not_identity(self, tmp_path):
        """Turning telemetry on adds files beside the checkpoint but
        must not perturb a single deterministic byte of it."""
        plain = run_soak(_config(tmp_path, "plain", epochs=3))
        with_tel = run_soak(_config(tmp_path, "tel", epochs=3,
                                    telemetry=True))
        assert with_tel.total_goodput_bps == plain.total_goodput_bps
        assert _artifact_bytes(tmp_path / "plain") \
            == _artifact_bytes(tmp_path / "tel")
        assert not Path(
            telemetry_paths(tmp_path / "plain")["telemetry"]).exists()

    def test_det_view_identical_across_resume(self, tmp_path):
        straight = run_soak(_config(tmp_path, "straight", epochs=4,
                                    telemetry=True))
        assert straight.epochs_completed == 4
        run_soak(_config(tmp_path, "resumed", epochs=2, telemetry=True))
        run_soak(_config(tmp_path, "resumed", epochs=4, resume=True,
                         telemetry=True, n_workers=2, shards=2))
        assert deterministic_view_bytes(tmp_path / "straight") \
            == deterministic_view_bytes(tmp_path / "resumed")
        assert _artifact_bytes(tmp_path / "straight") \
            == _artifact_bytes(tmp_path / "resumed")

    def test_slos_imply_telemetry(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=2,
                         slos=("goodput_bps<1",)))
        assert Path(
            telemetry_paths(tmp_path / "run")["telemetry"]).exists()

    def test_slo_drain_policy_stops_the_run(self, tmp_path):
        # goodput_bps>0 breaches on every epoch of a live workload, so
        # the drain policy must stop the soak after the first one.
        summary = run_soak(_config(tmp_path, "drain", epochs=5,
                                   slos=("goodput_bps>0!drain",)))
        assert summary.epochs_completed == 1
        assert summary.interrupted
        assert summary.slo_status == "breached"
        health = read_health(tmp_path / "drain")
        assert health["status"] == "breached"
        assert health["breaches"][0]["policy"] == "drain"
        # The drained checkpoint resumes cleanly once the rule is gone.
        resumed = run_soak(_config(tmp_path, "drain", epochs=5,
                                   resume=True, telemetry=True))
        assert resumed.epochs_completed == 5
        assert not resumed.interrupted

    def test_degraded_health_without_drain(self, tmp_path):
        summary = run_soak(_config(tmp_path, "run", epochs=2,
                                   slos=("goodput_bps>0",)))
        assert summary.epochs_completed == 2
        assert summary.slo_status in ("degraded", "breached")
        assert read_health(tmp_path / "run")["status"] != "ok"

    def test_profile_lands_in_manifest(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=2, profile=True))
        paths = state_paths(tmp_path / "run")
        with open(paths["manifest"]) as handle:
            section = json.load(handle)["profile"]
        assert section["stages"]["serve.epoch"]["count"] == 2
        assert section["top_functions"]

    def test_no_profile_section_by_default(self, tmp_path):
        run_soak(_config(tmp_path, "run", epochs=1))
        paths = state_paths(tmp_path / "run")
        with open(paths["manifest"]) as handle:
            assert json.load(handle).get("profile") is None


class TestSummary:
    def test_summary_round_trips_to_json(self, tmp_path):
        summary = run_soak(_config(tmp_path, "run", epochs=2))
        assert isinstance(summary, SoakSummary)
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["epochs_completed"] == 2
        assert payload["config_hash"] == summary.config_hash
        assert payload["cumulative_users"] > 0
