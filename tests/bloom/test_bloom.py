import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import (
    BloomFilter,
    HashSet,
    PositionalBloomFilter,
    false_positive_ratio,
    hash_positions,
    optimal_num_hashes,
)


class TestHashing:
    def test_deterministic(self):
        assert hash_positions(b"key", 0, 4, 48) == hash_positions(b"key", 0, 4, 48)

    def test_set_index_changes_positions(self):
        assert hash_positions(b"key", 0, 4, 48) != hash_positions(b"key", 1, 4, 48)

    def test_positions_in_range(self):
        for i in range(8):
            for pos in hash_positions(b"key%d" % i, i, 4, 48):
                assert 0 <= pos < 48

    def test_uniformity(self):
        counts = np.zeros(48)
        for i in range(3000):
            for pos in hash_positions(b"key%d" % i, 0, 1, 48):
                counts[pos] += 1
        # Each bit should receive ≈ 3000/48 = 62.5 hits.
        assert counts.min() > 30
        assert counts.max() < 100

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            hash_positions(b"k", 0, 0, 48)
        with pytest.raises(ValueError):
            hash_positions(b"k", 0, 4, 0)
        with pytest.raises(ValueError):
            HashSet(-1, 4, 48)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(48, 4)
        keys = [b"sta%d" % i for i in range(8)]
        for key in keys:
            bf.insert(key)
        for key in keys:
            assert key in bf

    def test_empty_contains_nothing(self):
        bf = BloomFilter(48, 4)
        assert b"anything" not in bf

    def test_fill_ratio(self):
        bf = BloomFilter(48, 4)
        assert bf.fill_ratio() == 0.0
        bf.insert(b"a")
        assert 0 < bf.fill_ratio() <= 4 / 48

    def test_from_bits_round_trip(self):
        bf = BloomFilter(48, 4)
        bf.insert(b"x")
        clone = BloomFilter.from_bits(bf.bits, 4)
        assert b"x" in clone

    def test_len_counts_insertions(self):
        bf = BloomFilter(48, 4)
        bf.insert(b"a")
        bf.insert(b"a")
        assert len(bf) == 2

    @given(st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_property_no_false_negatives(self, keys):
        bf = BloomFilter(48, 4)
        for key in keys:
            bf.insert(key)
        assert all(key in bf for key in keys)


class TestPositionalBloom:
    def test_position_encoded(self):
        pbf = PositionalBloomFilter()
        macs = [b"\x02\x00\x00\x00\x00%c" % i for i in range(4)]
        for pos, mac in enumerate(macs):
            pbf.insert(mac, pos)
        for pos, mac in enumerate(macs):
            assert pbf.matches(mac, pos)

    def test_wrong_position_usually_no_match(self):
        pbf = PositionalBloomFilter()
        pbf.insert(b"abcdef", 0)
        # Hash set 5 was never used: matching would be a false positive
        # (possible but rare with a single insertion).
        assert not pbf.matches(b"abcdef", 5)

    def test_matching_positions_includes_truth(self):
        pbf = PositionalBloomFilter()
        macs = [b"%06d" % i for i in range(8)]
        for pos, mac in enumerate(macs):
            pbf.insert(mac, pos)
        for pos, mac in enumerate(macs):
            assert pos in pbf.matching_positions(mac, 8)

    def test_round_trip_bits(self):
        pbf = PositionalBloomFilter()
        pbf.insert(b"abcdef", 2)
        clone = PositionalBloomFilter.from_bits(pbf.to_bits())
        assert clone.matches(b"abcdef", 2)


class TestFalsePositiveAnalysis:
    def test_paper_range_for_4_to_8_receivers(self):
        """§4.1: the FP ratio ranges from ≈0.31 % (N=4, optimal h=8) to
        ≈5.59 % (N=8, h=4)."""
        assert false_positive_ratio(8, 4) == pytest.approx(0.0031, abs=0.0005)
        assert false_positive_ratio(4, 8) == pytest.approx(0.0559, abs=0.005)

    def test_optimal_h_formula(self):
        # h* = (48/N)·ln2: ≈ 4.16 for N=8.
        assert optimal_num_hashes(8) == pytest.approx(4.16, abs=0.01)

    def test_optimal_h_minimises(self):
        n = 8
        h_star = round(optimal_num_hashes(n))
        fp_star = false_positive_ratio(h_star, n)
        assert fp_star <= false_positive_ratio(h_star - 2, n)
        assert fp_star <= false_positive_ratio(h_star + 2, n)

    def test_zero_keys_zero_fp(self):
        assert false_positive_ratio(4, 0) == 0.0

    def test_monte_carlo_agrees_with_formula(self):
        """Empirical FP rate of the real filter matches the analysis."""
        rng = np.random.default_rng(0)
        n, h, trials = 8, 4, 400
        false_positives = 0
        probes = 0
        for t in range(trials):
            pbf = PositionalBloomFilter(num_hashes=h)
            for pos in range(n):
                pbf.insert(rng.bytes(6), pos)
            outsider = rng.bytes(6)
            for pos in range(n):
                probes += 1
                if pbf.matches(outsider, pos):
                    false_positives += 1
        expected = false_positive_ratio(h, n)
        assert false_positives / probes == pytest.approx(expected, abs=0.02)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            false_positive_ratio(0, 4)
        with pytest.raises(ValueError):
            optimal_num_hashes(0)
