"""Cross-module integration tests: the full system, end to end."""

import numpy as np
import pytest

from repro.channel import ChannelModel, FadingProfile
from repro.core import (
    AggregationPolicy,
    AggregationQueue,
    CarpoolReceiver,
    CarpoolTransmitter,
    MacAddress,
    QueuedFrame,
    SubframeSpec,
)
from repro.mac import (
    AmpduProtocol,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    Dot11Protocol,
    FixedFerModel,
    WlanSimulator,
)
from repro.mac.protocols.base import AggregationLimits
from repro.mac.scenarios import VoipScenario
from repro.phy import PhyReceiver, PhyTransmitter, mcs_by_name
from repro.traffic import merge_arrivals, voip_downlink_arrivals, voip_uplink_arrivals
from repro.util.rng import RngStream


class TestQueueToAirPipeline:
    """AP queueing policy → Carpool frame → channel → every receiver."""

    def test_aggregation_batch_becomes_decodable_frame(self):
        queue = AggregationQueue(AggregationPolicy(max_latency=0.01))
        macs = [MacAddress.from_int(i) for i in range(4)]
        rng = np.random.default_rng(0)
        payloads = {}
        for i, mac in enumerate(macs):
            size = 150 + 100 * i
            payloads[mac] = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            queue.enqueue(QueuedFrame(enqueue_time=0.0, receiver=mac, size_bytes=size))
        batch = queue.build_batch(now=0.02)
        assert batch.num_receivers == 4

        specs = [
            SubframeSpec(mac, payloads[mac], mcs_by_name("QAM16-1/2"))
            for mac in batch.receivers
        ]
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        channel = ChannelModel(snr_db=30, rng=RngStream(1))
        received = channel.transmit(frame.symbols)
        for mac in macs:
            result = CarpoolReceiver(mac, coded=True).receive(received)
            assert len(result.matched_positions) >= 1
            assert result.payload_for(result.matched_positions[0]) == payloads[mac]


class TestStandardVsCarpoolOnSameChannel:
    def test_carpool_frame_longer_but_amortised(self):
        """One Carpool frame for 4 STAs beats 4 standard frames in total
        symbols (preamble amortisation)."""
        rng = np.random.default_rng(2)
        payloads = [bytes(rng.integers(0, 256, 400, dtype=np.uint8)) for _ in range(4)]
        mcs = mcs_by_name("QAM16-1/2")
        specs = [
            SubframeSpec(MacAddress.from_int(i), p, mcs)
            for i, p in enumerate(payloads)
        ]
        carpool = CarpoolTransmitter(coded=True).build_frame(specs)
        singles = sum(
            PhyTransmitter(mcs, coded=True).build_frame(p).n_symbols for p in payloads
        )
        assert carpool.n_symbols < singles

    def test_legacy_receiver_decodes_legacy_frame_alongside(self):
        payload = b"legacy coexistence" * 10
        mcs = mcs_by_name("QPSK-1/2")
        frame = PhyTransmitter(mcs, coded=True).build_frame(payload)
        channel = ChannelModel(snr_db=28, rng=RngStream(3))
        rx = PhyReceiver(coded=True).receive(channel.transmit(frame.symbols))
        assert rx.payload == payload


class TestTrafficThroughMac:
    def test_voip_scenario_end_to_end_all_protocols(self):
        scenario = VoipScenario(num_stations=6, duration=2.0)
        for cls in (Dot11Protocol, AmpduProtocol, CarpoolProtocol):
            result = scenario.run(cls)
            assert result.measured_ap_goodput_bps > 0

    def test_offered_equals_delivered_when_uncongested(self):
        stas = [f"sta{i}" for i in range(4)]
        rng = RngStream(4)
        arrivals = merge_arrivals(
            voip_downlink_arrivals(stas, 3.0, rng.child("d")),
            voip_uplink_arrivals(stas, 3.0, rng.child("u")),
        )
        total_offered = sum(a.size_bytes for a in arrivals)
        sim = WlanSimulator(
            CarpoolProtocol(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005)),
            num_stations=4,
            arrivals=arrivals,
            error_model=FixedFerModel(0.0),
            rng=RngStream(5),
        )
        summary = sim.run(4.0)  # run past the arrival horizon to drain queues
        delivered = (
            summary.downlink_goodput_bps + summary.uplink_goodput_bps
        ) * 4.0 / 8.0
        assert delivered == pytest.approx(total_offered, rel=0.01)


class TestChannelPhyConsistency:
    @pytest.mark.slow
    def test_snr_sweep_monotone_fer(self):
        """Frame error rate decreases with SNR through the whole stack."""
        payload = bytes(np.random.default_rng(6).integers(0, 256, 300, dtype=np.uint8))
        mcs = mcs_by_name("QAM16-1/2")
        frame = PhyTransmitter(mcs, coded=True).build_frame(payload)
        fers = []
        profile = FadingProfile(num_taps=2, delay_spread_taps=0.35,
                                ricean_k_db=18.0, coherence_time=np.inf)
        for snr in (8.0, 16.0, 30.0):
            channel = ChannelModel(snr_db=snr, rng=RngStream(7), profile=profile)
            receiver = PhyReceiver(coded=True)
            errors = 0
            for _ in range(15):
                rx = receiver.receive(channel.transmit(frame.symbols))
                errors += rx.payload != payload
            fers.append(errors / 15)
        assert fers[0] >= fers[1] >= fers[2]
        assert fers[2] == 0.0
