import numpy as np

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_distinct_paths_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestRngStream:
    def test_same_path_same_sequence(self):
        a = RngStream(7).child("fading").uniform(size=10)
        b = RngStream(7).child("fading").uniform(size=10)
        np.testing.assert_array_equal(a, b)

    def test_children_independent(self):
        root = RngStream(7)
        a = root.child("noise").uniform(size=100)
        b = root.child("traffic").uniform(size=100)
        assert not np.allclose(a, b)

    def test_adding_draws_does_not_perturb_sibling(self):
        root1 = RngStream(7)
        _ = root1.child("noise").uniform(size=1000)
        t1 = root1.child("traffic").uniform(size=10)

        root2 = RngStream(7)
        t2 = root2.child("traffic").uniform(size=10)
        np.testing.assert_array_equal(t1, t2)

    def test_complex_normal_stats(self):
        z = RngStream(7).child("z").complex_normal(scale=2.0, size=20000)
        assert abs(np.mean(np.abs(z) ** 2) - 4.0) < 0.2
        assert abs(z.mean()) < 0.1

    def test_nested_children(self):
        leaf = RngStream(5).child("a").child("b")
        assert leaf.path == ("a", "b")

    def test_repr_mentions_path(self):
        assert "fading" in repr(RngStream(1).child("fading"))
