import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pad_bits,
    random_bits,
)


class TestBytesBitsRoundTrip:
    def test_known_pattern(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01").tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.array([], dtype=np.uint8)) == b""

    def test_non_multiple_of_eight_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    @given(st.binary(min_size=0, max_size=200))
    def test_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestIntBits:
    def test_known(self):
        assert int_to_bits(5, 4).tolist() == [0, 1, 0, 1]
        assert bits_to_int(np.array([1, 0, 1])) == 5

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_round_trip(self, value):
        assert bits_to_int(int_to_bits(value, 20)) == value


class TestHamming:
    def test_zero_for_equal(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        assert hamming_distance(a, a) == 0

    def test_counts_differences(self):
        a = np.array([1, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 0, 1, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestPadAndRandom:
    def test_pad_noop_when_aligned(self):
        bits = np.ones(8, dtype=np.uint8)
        assert pad_bits(bits, 4).size == 8

    def test_pad_extends_with_zeros(self):
        bits = np.ones(5, dtype=np.uint8)
        padded = pad_bits(bits, 4)
        assert padded.size == 8
        assert padded[5:].tolist() == [0, 0, 0]

    def test_random_bits_binary(self):
        bits = random_bits(1000, np.random.default_rng(0))
        assert set(np.unique(bits)) <= {0, 1}
        assert 300 < bits.sum() < 700
