import math

import pytest

from repro.util.units import (
    MEGA,
    bits,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    transmission_time,
    watts_to_dbm,
)


class TestDbConversions:
    def test_round_trip(self):
        for db in (-20.0, 0.0, 3.0, 30.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)


class TestDbm:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_twenty_dbm_is_hundred_milliwatt(self):
        assert dbm_to_watts(20.0) == pytest.approx(0.1)

    def test_round_trip(self):
        assert watts_to_dbm(dbm_to_watts(17.0)) == pytest.approx(17.0)

    def test_nonpositive_power_raises(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestAirtime:
    def test_bits(self):
        assert bits(1500) == 12000

    def test_paper_example_1500B_at_54mbps(self):
        # §3: 1500-byte packet is ≈222 µs at 54 Mbit/s.
        t = transmission_time(1500, 54 * MEGA)
        assert t == pytest.approx(222e-6, rel=0.01)

    def test_paper_example_64kb_at_54mbps(self):
        # §3: a 64 KB aggregate needs ≈9.7 ms at 54 Mbit/s.
        t = transmission_time(64 * 1024, 54 * MEGA)
        assert t == pytest.approx(9.7e-3, rel=0.01)

    def test_paper_example_1500B_at_600mbps(self):
        # §3: 1500 B × 8 receivers at 600 Mbit/s ⇒ 20 µs payload airtime.
        t = transmission_time(1500, 600 * MEGA)
        assert t == pytest.approx(20e-6, rel=0.01)

    def test_zero_rate_raises(self):
        with pytest.raises(ValueError):
            transmission_time(100, 0)
