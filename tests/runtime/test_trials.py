"""The parallel trial runner must be deterministic for any worker count."""

import os

import numpy as np
import pytest

from repro.runtime import (
    autotune_chunk_size,
    parallel_map,
    persistent_pool,
    resolve_workers,
    run_trials,
    shared_payload,
    shutdown_pools,
    trial_rngs,
)


def _toy_trial(trial_index, rng, offset):
    # Top-level so it pickles into pool workers.
    return (trial_index, offset + float(rng.random()))


def _square(x):
    return x * x


def _worker_pid(trial_index, rng):
    return os.getpid()


def _read_shared(trial_index, rng):
    return shared_payload()


def _draw_trial(trial_index, rng, scale):
    return round(float(rng.random()) * scale, 9)


def _draw_batch(start, rngs, scale):
    # Same per-RNG draws as _draw_trial, executed for a whole chunk.
    return [round(float(rng.random()) * scale, 9) for rng in rngs]


def _chunk_width_batch(start, rngs):
    # Every trial in a chunk reports how many trials shared its chunk.
    return [len(rngs)] * len(rngs)


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_beats_autodetect(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_autodetect_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestRunTrials:
    def test_serial_equals_parallel(self):
        serial = run_trials(_toy_trial, 17, seed=123, n_workers=1, args=(5.0,))
        parallel = run_trials(_toy_trial, 17, seed=123, n_workers=4, args=(5.0,))
        assert serial == parallel

    def test_chunk_size_does_not_change_results(self):
        baseline = run_trials(_toy_trial, 11, seed=9, n_workers=1, args=(0.0,))
        for chunk_size in (1, 2, 5, 11):
            chunked = run_trials(_toy_trial, 11, seed=9, n_workers=3,
                                 chunk_size=chunk_size, args=(0.0,))
            assert chunked == baseline

    def test_results_are_ordered(self):
        results = run_trials(_toy_trial, 9, seed=0, n_workers=3, args=(0.0,))
        assert [index for index, _ in results] == list(range(9))

    def test_zero_trials(self):
        assert run_trials(_toy_trial, 0, seed=0, n_workers=2, args=(0.0,)) == []

    def test_trial_rngs_match_runner(self):
        rngs = trial_rngs(42, 5)
        expected = [float(rng.random()) for rng in rngs]
        observed = [v for _, v in run_trials(_toy_trial, 5, seed=42,
                                             n_workers=1, args=(0.0,))]
        assert observed == expected


class TestPersistentPools:
    def test_pool_is_reused_across_calls(self):
        shutdown_pools()
        first = set(run_trials(_worker_pid, 6, seed=0, n_workers=2))
        second = set(run_trials(_worker_pid, 6, seed=1, n_workers=2))
        # The same worker processes serve both calls (start-up paid once);
        # scheduling may skew chunks, so require overlap, not equality.
        assert first & second
        shutdown_pools()

    def test_reuse_pool_false_uses_fresh_workers(self):
        shutdown_pools()
        first = set(run_trials(_worker_pid, 4, seed=0, n_workers=2,
                               reuse_pool=False))
        second = set(run_trials(_worker_pid, 4, seed=0, n_workers=2,
                                reuse_pool=False))
        assert first.isdisjoint(second)

    def test_persistent_pool_identity(self):
        shutdown_pools()
        assert persistent_pool(2) is persistent_pool(2)
        shutdown_pools()

    def test_results_identical_with_and_without_reuse(self):
        shutdown_pools()
        reused = run_trials(_toy_trial, 13, seed=3, n_workers=2, args=(1.0,))
        disposable = run_trials(_toy_trial, 13, seed=3, n_workers=2,
                                args=(1.0,), reuse_pool=False)
        assert reused == disposable
        shutdown_pools()

    def test_shared_payload_reaches_workers(self):
        shutdown_pools()
        payload = {"table": [1, 2, 3]}
        values = run_trials(_read_shared, 4, seed=0, n_workers=2,
                            shared=payload)
        assert all(v == payload for v in values)
        shutdown_pools()

    def test_shared_payload_on_serial_path(self):
        values = run_trials(_read_shared, 3, seed=0, n_workers=1,
                            shared={"k": 7})
        assert values == [{"k": 7}] * 3


class TestGranularity:
    def test_chunks_align_to_granularity(self):
        shutdown_pools()
        # 10 trials, chunk_size 3 rounded up to 4: widths 4, 4, 2 (tail).
        widths = run_trials(_worker_pid, 10, seed=0, n_workers=2,
                            chunk_size=3, granularity=2,
                            batch_fn=_chunk_width_batch)
        assert sorted(set(widths)) == [2, 4]
        assert widths[:8] == [4] * 8
        shutdown_pools()

    def test_granularity_does_not_change_results(self):
        baseline = run_trials(_draw_trial, 12, seed=4, n_workers=1, args=(3.0,))
        for granularity in (2, 3, 4):
            tiled = run_trials(_draw_trial, 12, seed=4, n_workers=3,
                               granularity=granularity, args=(3.0,))
            assert tiled == baseline
        shutdown_pools()

    def test_autotune_respects_granularity(self):
        size = autotune_chunk_size(_draw_trial, 40, seed=0, n_workers=4,
                                   args=(1.0,), granularity=3)
        assert size % 3 == 0 or size == 40


class TestBatchFn:
    def test_batch_path_matches_scalar(self):
        shutdown_pools()
        scalar = run_trials(_draw_trial, 14, seed=8, n_workers=1, args=(2.0,))
        for kwargs in ({"n_workers": 1}, {"n_workers": 2},
                       {"n_workers": 4, "chunk_size": 3}):
            batched = run_trials(_draw_trial, 14, seed=8, args=(2.0,),
                                 batch_fn=_draw_batch, **kwargs)
            assert batched == scalar, kwargs
        shutdown_pools()

    def test_length_mismatch_is_an_error(self):
        with pytest.raises(RuntimeError, match="batch"):
            run_trials(_draw_trial, 5, seed=0, n_workers=1, args=(1.0,),
                       batch_fn=lambda start, rngs, scale: [0.0])


class TestFingerprintKeying:
    def test_equal_recreated_payload_reuses_pool(self):
        shutdown_pools()
        first = set(run_trials(_worker_pid, 6, seed=0, n_workers=2,
                               shared={"table": [1, 2, 3]}))
        # A *new* but equal payload object must hit the same warm pool.
        second = set(run_trials(_worker_pid, 6, seed=1, n_workers=2,
                                shared={"table": [1, 2, 3]}))
        assert first & second
        shutdown_pools()

    def test_different_payload_retires_old_pool(self):
        shutdown_pools()
        first = set(run_trials(_worker_pid, 6, seed=0, n_workers=2,
                               shared={"table": [1, 2, 3]}))
        second = set(run_trials(_worker_pid, 6, seed=0, n_workers=2,
                                shared={"table": [4, 5, 6]}))
        assert first.isdisjoint(second)
        values = run_trials(_read_shared, 2, seed=0, n_workers=2,
                            shared={"table": [4, 5, 6]})
        assert values == [{"table": [4, 5, 6]}] * 2
        shutdown_pools()

    def test_payload_free_pool_is_kept_separate(self):
        shutdown_pools()
        plain = persistent_pool(2)
        with_payload = persistent_pool(2, shared={"k": 1})
        assert plain is not with_payload
        assert persistent_pool(2) is plain
        shutdown_pools()


class TestAutotune:
    def test_bounds_and_serial_shortcut(self):
        assert autotune_chunk_size(_toy_trial, 1, seed=0, n_workers=4,
                                   args=(0.0,)) == 1
        assert autotune_chunk_size(_toy_trial, 40, seed=0, n_workers=1,
                                   args=(0.0,)) == 40
        size = autotune_chunk_size(_toy_trial, 40, seed=0, n_workers=4,
                                   args=(0.0,))
        assert 1 <= size <= 10  # ceil(40/4): at least one chunk per worker

    def test_auto_chunking_does_not_change_results(self):
        baseline = run_trials(_toy_trial, 11, seed=9, n_workers=1, args=(0.0,))
        auto = run_trials(_toy_trial, 11, seed=9, n_workers=3,
                          chunk_size="auto", args=(0.0,))
        assert auto == baseline


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(23))
        assert parallel_map(_square, items, n_workers=1) == [x * x for x in items]
        assert parallel_map(_square, items, n_workers=4) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], n_workers=4) == []


class TestExperimentDeterminism:
    def test_ber_by_symbol_index_serial_equals_parallel(self):
        from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

        link = LinkConfig(seed=5)
        serial = ber_by_symbol_index("QPSK-1/2", 400, trials=4, link=link,
                                     n_workers=1)
        parallel = ber_by_symbol_index("QPSK-1/2", 400, trials=4, link=link,
                                       n_workers=3)
        assert np.array_equal(serial.ber_per_symbol, parallel.ber_per_symbol)
        assert serial.crc_pass_rate == parallel.crc_pass_rate
        assert serial.side_bit_error_rate == parallel.side_bit_error_rate


def _emitting_trial(trial_index, rng, scale):
    # Emits through the ambient recorder/registry so trace determinism
    # can be asserted across worker counts.
    from repro.obs.trace import active_recorder, metrics

    value = round(float(rng.random()) * scale, 9)
    rec = active_recorder()
    if rec is not None:
        rec.emit("test", "trial_done", value=value)
    metrics().counter("test.trials").inc()
    return (trial_index, value)


def _silent_batch(start, rngs, scale):
    # Correct values but no events: using it under tracing would lose
    # the per-trial emissions (and the test would catch it).
    return [(start + t, round(float(rng.random()) * scale, 9))
            for t, rng in enumerate(rngs)]


def _emitting_item(x):
    from repro.obs.trace import active_recorder

    rec = active_recorder()
    if rec is not None:
        rec.emit("test", "map_item", x=x)
    return x * x


class TestTraceDeterminism:
    """Correlation ids derive from the run seed and the trial's spawn
    position — never ``id()`` or the clock — so an instrumented run
    produces the exact same trace at any worker count or chunking."""

    @pytest.fixture(autouse=True)
    def _pristine_obs(self):
        from repro.obs.trace import disable_metrics, set_recorder

        set_recorder(None)
        disable_metrics()
        yield
        set_recorder(None)
        disable_metrics()

    def _traced_run(self, **kwargs):
        import json

        from repro.obs.trace import TraceRecorder, set_recorder

        recorder = TraceRecorder(None, deterministic=True)
        set_recorder(recorder)
        try:
            results = run_trials(_emitting_trial, 8, seed=5, args=(2.0,),
                                 **kwargs)
        finally:
            set_recorder(None)
        return results, json.dumps(recorder.events, sort_keys=True)

    def test_trace_byte_identical_across_worker_counts(self):
        shutdown_pools()
        serial_results, serial_trace = self._traced_run(n_workers=1)
        for kwargs in ({"n_workers": 3}, {"n_workers": 2, "chunk_size": 3},
                       {"n_workers": 3, "chunk_size": 1}):
            results, trace = self._traced_run(**kwargs)
            assert results == serial_results, kwargs
            assert trace == serial_trace, kwargs
        shutdown_pools()

    def test_traced_runs_bypass_the_batch_path(self):
        # A batch executor skips per-trial instrumentation, so a traced
        # run must fall back to the scalar oracle — same results, same
        # trace bytes as an untraced-equivalent scalar run, any workers.
        shutdown_pools()
        _, serial_trace = self._traced_run(n_workers=1)
        for n_workers in (1, 3):
            results, trace = self._traced_run(n_workers=n_workers,
                                              batch_fn=_silent_batch)
            assert trace == serial_trace
            assert results == [(i, v) for i, (_, v) in enumerate(results)]
        shutdown_pools()

    def test_cids_derive_from_seed_and_position(self):
        from repro.obs.trace import trial_correlation_id

        _, trace = self._traced_run(n_workers=1)
        import json

        events = json.loads(trace)
        assert [e["cid"] for e in events] == [
            trial_correlation_id(5, i) for i in range(8)
        ]
        # A different run seed yields different ids for the same slots.
        assert trial_correlation_id(6, 0) != trial_correlation_id(5, 0)

    def test_parallel_map_positional_cids(self):
        import json

        from repro.obs.trace import TraceRecorder, set_recorder

        traces = []
        for n_workers in (1, 3):
            recorder = TraceRecorder(None, deterministic=True)
            set_recorder(recorder)
            try:
                assert parallel_map(_emitting_item, [3, 1, 2],
                                    n_workers=n_workers) == [9, 1, 4]
            finally:
                set_recorder(None)
            traces.append(json.dumps(recorder.events, sort_keys=True))
        assert traces[0] == traces[1]
        events = json.loads(traces[0])
        assert [e["cid"] for e in events] == ["i00000", "i00001", "i00002"]
        shutdown_pools()

    def test_worker_metrics_fold_back_only_when_shipped(self):
        from repro.obs.trace import disable_metrics, enable_metrics

        registry = enable_metrics()  # parent-side only
        run_trials(_emitting_trial, 6, seed=1, n_workers=2, args=(1.0,))
        assert registry.counter("test.trials").value == 0
        disable_metrics()

        registry = enable_metrics(ship_to_workers=True)
        run_trials(_emitting_trial, 6, seed=1, n_workers=2, args=(1.0,))
        assert registry.counter("test.trials").value == 6
        disable_metrics()
        shutdown_pools()
