"""The parallel trial runner must be deterministic for any worker count."""

import numpy as np
import pytest

from repro.runtime import parallel_map, resolve_workers, run_trials, trial_rngs


def _toy_trial(trial_index, rng, offset):
    # Top-level so it pickles into pool workers.
    return (trial_index, offset + float(rng.random()))


def _square(x):
    return x * x


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_beats_autodetect(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_autodetect_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestRunTrials:
    def test_serial_equals_parallel(self):
        serial = run_trials(_toy_trial, 17, seed=123, n_workers=1, args=(5.0,))
        parallel = run_trials(_toy_trial, 17, seed=123, n_workers=4, args=(5.0,))
        assert serial == parallel

    def test_chunk_size_does_not_change_results(self):
        baseline = run_trials(_toy_trial, 11, seed=9, n_workers=1, args=(0.0,))
        for chunk_size in (1, 2, 5, 11):
            chunked = run_trials(_toy_trial, 11, seed=9, n_workers=3,
                                 chunk_size=chunk_size, args=(0.0,))
            assert chunked == baseline

    def test_results_are_ordered(self):
        results = run_trials(_toy_trial, 9, seed=0, n_workers=3, args=(0.0,))
        assert [index for index, _ in results] == list(range(9))

    def test_zero_trials(self):
        assert run_trials(_toy_trial, 0, seed=0, n_workers=2, args=(0.0,)) == []

    def test_trial_rngs_match_runner(self):
        rngs = trial_rngs(42, 5)
        expected = [float(rng.random()) for rng in rngs]
        observed = [v for _, v in run_trials(_toy_trial, 5, seed=42,
                                             n_workers=1, args=(0.0,))]
        assert observed == expected


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(23))
        assert parallel_map(_square, items, n_workers=1) == [x * x for x in items]
        assert parallel_map(_square, items, n_workers=4) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], n_workers=4) == []


class TestExperimentDeterminism:
    def test_ber_by_symbol_index_serial_equals_parallel(self):
        from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

        link = LinkConfig(seed=5)
        serial = ber_by_symbol_index("QPSK-1/2", 400, trials=4, link=link,
                                     n_workers=1)
        parallel = ber_by_symbol_index("QPSK-1/2", 400, trials=4, link=link,
                                       n_workers=3)
        assert np.array_equal(serial.ber_per_symbol, parallel.ber_per_symbol)
        assert serial.crc_pass_rate == parallel.crc_pass_rate
        assert serial.side_bit_error_rate == parallel.side_bit_error_rate
