"""BENCH_*.json schema validation, baseline comparison, and smoke runs."""

import copy
import json

import pytest

from repro.runtime.bench import (
    SCHEMA_VERSION,
    compare_bench,
    run_mac_bench,
    run_phy_bench,
    validate_bench,
)

def _scaling(serial_seconds, units, timings, unit="trials"):
    return {
        "unit": unit,
        "serial_seconds": serial_seconds,
        "workers": {
            str(w): {
                "seconds": s,
                f"{unit}_per_s": units / s,
                "speedup_vs_serial": serial_seconds / s,
            }
            for w, s in timings.items()
        },
    }


_VALID = {
    "meta": {
        "schema_version": SCHEMA_VERSION,
        "suite": "phy",
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "test",
        "c_kernel": True,
        "smoke": True,
        "n_workers": 1,
    },
    "encode": {
        "n_bits": 100, "rate": "3/4", "seconds_per_frame": 1e-3,
        "mbit_per_s": 0.1,
    },
    "viterbi": {
        "n_bits": 100, "rate": "3/4", "seconds_per_frame": 1e-3,
        "mbit_per_s": 0.1, "reference_seconds_per_frame": 1e-1,
        "speedup_vs_reference": 100.0, "bit_exact_vs_reference": True,
    },
    "rx_chain": {
        "mcs": "QAM64-3/4", "payload_bytes": 500, "seconds_per_frame": 1e-2,
        "frames_per_s": 100.0,
    },
    "monte_carlo": {
        "trials": 4, "payload_bytes": 300, "serial_seconds": 1.0,
        "serial_trials_per_s": 4.0, "parallel_workers": 2,
        "parallel_seconds": 1.0, "parallel_trials_per_s": 4.0,
        "pool_reused": True, "crossover_workers": None,
        "identical_serial_parallel": True,
        "scaling": _scaling(1.0, 4, {1: 0.8, 2: 1.0}),
    },
}

_VALID_MAC = {
    "meta": {
        "schema_version": SCHEMA_VERSION,
        "suite": "mac",
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "test",
        "smoke": True,
        "n_workers": 1,
    },
    "engine": {
        "stations": 4, "duration": 0.4, "runs": 2, "scalar_seconds": 1.0,
        "batched_seconds": 0.8, "speedup_batched": 1.25,
        "identical_metrics": True,
    },
    "sweep": {
        "receivers": [2, 4], "payloads": [256, 1024], "points": 4,
        "trials": 1, "scalar_uncached_seconds": 10.0,
        "batched_cached_seconds": 1.0, "speedup": 10.0,
        "identical_results": True,
    },
    "trials_pool": {
        "trials": 4, "stations": 4, "payload_bytes": 300,
        "probes_per_tile": 2, "serial_seconds": 1.0,
        "serial_trials_per_s": 4.0, "parallel_workers": 2,
        "parallel_seconds": 0.5, "parallel_trials_per_s": 8.0,
        "pool_reused": True, "crossover_workers": 2,
        "identical_serial_parallel": True,
        "scaling": _scaling(1.0, 4, {1: 0.6, 2: 0.5}),
    },
}


_VALID_NET = {
    "meta": {
        "schema_version": SCHEMA_VERSION,
        "suite": "net",
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "test",
        "smoke": True,
        "n_workers": 2,
    },
    "deployment": {
        "aps": 4, "stas_per_ap": 2, "duration": 0.3,
        "serial_seconds": 1.0, "serial_cells_per_s": 4.0,
        "parallel_workers": 2, "parallel_seconds": 0.5,
        "parallel_cells_per_s": 8.0, "pool_reused": True,
        "crossover_workers": 2, "identical_serial_parallel": True,
        "scaling": _scaling(1.0, 4, {1: 0.6, 2: 0.5}, unit="cells"),
    },
    "replay": {
        "aps": 4, "stas_per_ap": 2, "duration": 0.3,
        "cold_seconds": 1.0, "warm_seconds": 0.01,
        "identical_cold_warm": True,
    },
    "streaming": {
        "small_aps": 4, "large_aps": 16, "stas_per_ap": 2,
        "duration": 0.3, "shards": 4,
        "unsharded_ipc_bytes": 50_000, "sharded_ipc_bytes": 5_000,
        "ipc_reduction_factor": 10.0,
        "small_peak_rss_mb": 40.0, "large_peak_rss_mb": 41.0,
        "rss_growth_factor": 1.025,
        "ipc_reduction_ok": True, "rss_flat_ok": True,
        "identical_sharded_unsharded": True,
    },
}


class TestValidateBench:
    def test_accepts_valid_payload(self):
        assert validate_bench(copy.deepcopy(_VALID)) == _VALID

    def test_accepts_valid_mac_payload(self):
        assert validate_bench(copy.deepcopy(_VALID_MAC)) == _VALID_MAC

    def test_missing_suite_defaults_to_phy(self):
        legacy = copy.deepcopy(_VALID)
        del legacy["meta"]["suite"]
        assert validate_bench(legacy) == legacy

    def test_rejects_unknown_suite(self):
        broken = copy.deepcopy(_VALID)
        broken["meta"]["suite"] = "dsp"
        with pytest.raises(ValueError, match="unknown bench suite"):
            validate_bench(broken)

    def test_rejects_missing_section(self):
        broken = copy.deepcopy(_VALID)
        del broken["viterbi"]
        with pytest.raises(ValueError, match="missing section 'viterbi'"):
            validate_bench(broken)

    def test_rejects_missing_mac_section(self):
        broken = copy.deepcopy(_VALID_MAC)
        del broken["sweep"]
        with pytest.raises(ValueError, match="missing section 'sweep'"):
            validate_bench(broken)

    def test_rejects_missing_key(self):
        broken = copy.deepcopy(_VALID)
        del broken["monte_carlo"]["crossover_workers"]
        with pytest.raises(ValueError, match="monte_carlo.crossover_workers"):
            validate_bench(broken)

    def test_rejects_inexact_decoder(self):
        broken = copy.deepcopy(_VALID)
        broken["viterbi"]["bit_exact_vs_reference"] = False
        with pytest.raises(ValueError, match="bit_exact_vs_reference"):
            validate_bench(broken)

    def test_rejects_nondeterministic_runner(self):
        broken = copy.deepcopy(_VALID)
        broken["monte_carlo"]["identical_serial_parallel"] = False
        with pytest.raises(ValueError, match="identical_serial_parallel"):
            validate_bench(broken)

    def test_rejects_batched_scalar_divergence(self):
        broken = copy.deepcopy(_VALID_MAC)
        broken["engine"]["identical_metrics"] = False
        with pytest.raises(ValueError, match="identical_metrics"):
            validate_bench(broken)

    def test_rejects_sweep_divergence(self):
        broken = copy.deepcopy(_VALID_MAC)
        broken["sweep"]["identical_results"] = False
        with pytest.raises(ValueError, match="identical_results"):
            validate_bench(broken)

    def test_rejects_wrong_schema_version(self):
        broken = copy.deepcopy(_VALID)
        broken["meta"]["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench(broken)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_bench([])


class TestCompareBench:
    def test_identical_runs_have_no_regressions(self):
        assert compare_bench(copy.deepcopy(_VALID_MAC), _VALID_MAC) == []

    def test_small_drop_within_threshold_passes(self):
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["speedup"] = _VALID_MAC["sweep"]["speedup"] * 0.85
        assert compare_bench(current, _VALID_MAC, threshold=0.2) == []

    def test_large_drop_is_flagged(self):
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["speedup"] = _VALID_MAC["sweep"]["speedup"] * 0.5
        messages = compare_bench(current, _VALID_MAC, threshold=0.2)
        assert len(messages) == 1
        assert "sweep.speedup" in messages[0]

    def test_improvement_is_not_flagged(self):
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["speedup"] *= 10
        current["trials_pool"]["parallel_trials_per_s"] *= 10
        assert compare_bench(current, _VALID_MAC) == []

    def test_raw_seconds_are_not_gated(self):
        # Absolute seconds are results but not throughput metrics: a
        # slower wall clock with the same throughput keys does not flag.
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["scalar_uncached_seconds"] *= 100
        assert compare_bench(current, _VALID_MAC) == []

    def test_mismatched_workloads_are_skipped(self):
        # A smoke-sized sweep legitimately has a different speedup than
        # the full grid: sections with different workload descriptors
        # are not comparable and must not flag phantom regressions.
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["points"] = 16
        current["sweep"]["trials"] = 5
        current["sweep"]["speedup"] = 1.0  # would flag if compared
        assert compare_bench(current, _VALID_MAC) == []

    def test_same_workload_drop_still_flags_other_sections(self):
        current = copy.deepcopy(_VALID_MAC)
        current["sweep"]["points"] = 16  # sweep skipped...
        current["engine"]["speedup_batched"] = 0.1  # ...engine still gated
        messages = compare_bench(current, _VALID_MAC)
        assert len(messages) == 1
        assert "engine.speedup_batched" in messages[0]

    def test_missing_sections_in_current_are_skipped(self):
        current = {"meta": _VALID_MAC["meta"], "sweep": _VALID_MAC["sweep"]}
        assert compare_bench(current, _VALID_MAC) == []

    def test_phy_vs_mac_baselines_do_not_cross_talk(self):
        # Disjoint section names: nothing to compare, nothing to flag.
        assert compare_bench(copy.deepcopy(_VALID), _VALID_MAC) == []

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_bench(_VALID_MAC, _VALID_MAC, threshold=1.5)


class TestCrossoverGate:
    def test_lost_crossover_on_full_run_is_flagged(self):
        current = copy.deepcopy(_VALID_MAC)
        current["meta"]["smoke"] = False
        current["trials_pool"]["crossover_workers"] = None
        messages = compare_bench(current, _VALID_MAC)
        assert len(messages) == 1
        assert "trials_pool.crossover_workers" in messages[0]

    def test_smoke_runs_are_exempt(self):
        # Tiny smoke workloads rarely amortise a pool; losing the
        # crossover there says nothing about the full-size run.
        current = copy.deepcopy(_VALID_MAC)
        assert current["meta"]["smoke"] is True
        current["trials_pool"]["crossover_workers"] = None
        assert compare_bench(current, _VALID_MAC) == []

    def test_null_baseline_never_flags(self):
        # _VALID's monte_carlo baseline has crossover None: a null
        # candidate is status quo, not a regression.
        current = copy.deepcopy(_VALID)
        current["meta"]["smoke"] = False
        assert compare_bench(current, _VALID) == []

    def test_crossover_moving_later_is_degree_not_kind(self):
        # 2 -> 4 still crosses over; the throughput keys gate the degree.
        current = copy.deepcopy(_VALID_MAC)
        current["meta"]["smoke"] = False
        current["trials_pool"]["crossover_workers"] = 4
        assert compare_bench(current, _VALID_MAC) == []

    def test_mismatched_workload_skips_the_gate(self):
        current = copy.deepcopy(_VALID_MAC)
        current["meta"]["smoke"] = False
        current["trials_pool"]["trials"] = 64
        current["trials_pool"]["crossover_workers"] = None
        assert compare_bench(current, _VALID_MAC) == []

    def test_scaling_curves_are_results_not_workload(self):
        # A changed scaling subsection must not make the section look
        # like a different workload (which would skip all its gates).
        current = copy.deepcopy(_VALID_MAC)
        current["trials_pool"]["scaling"] = _scaling(2.0, 4, {1: 1.0, 2: 1.8})
        current["trials_pool"]["parallel_trials_per_s"] = 1.0
        messages = compare_bench(current, _VALID_MAC)
        assert any("trials_pool.parallel_trials_per_s" in m for m in messages)


class TestStreamingSection:
    def test_accepts_valid_net_payload(self):
        assert validate_bench(copy.deepcopy(_VALID_NET)) == _VALID_NET

    @pytest.mark.parametrize("gate", [
        "identical_sharded_unsharded", "ipc_reduction_ok", "rss_flat_ok",
    ])
    def test_rejects_failed_streaming_gates(self, gate):
        broken = copy.deepcopy(_VALID_NET)
        broken["streaming"][gate] = False
        with pytest.raises(ValueError, match=gate):
            validate_bench(broken)

    def test_rejects_missing_streaming_key(self):
        broken = copy.deepcopy(_VALID_NET)
        del broken["streaming"]["ipc_reduction_factor"]
        with pytest.raises(ValueError, match="streaming.ipc_reduction_factor"):
            validate_bench(broken)

    def test_ipc_reduction_drop_is_flagged(self):
        current = copy.deepcopy(_VALID_NET)
        current["streaming"]["ipc_reduction_factor"] = 4.0  # 10x -> 4x
        messages = compare_bench(current, _VALID_NET)
        assert len(messages) == 1
        assert "streaming.ipc_reduction_factor" in messages[0]

    def test_measured_bytes_and_rss_are_results_not_workload(self):
        # Byte counts and RSS marks vary run to run; they must neither
        # make the section look like a different workload (which would
        # skip its gates) nor flag on their own — only the reduction
        # factor and the *_ok booleans gate.
        current = copy.deepcopy(_VALID_NET)
        current["streaming"]["unsharded_ipc_bytes"] = 80_000
        current["streaming"]["sharded_ipc_bytes"] = 9_000
        current["streaming"]["small_peak_rss_mb"] = 55.0
        current["streaming"]["large_peak_rss_mb"] = 60.0
        current["streaming"]["rss_growth_factor"] = 1.09
        assert compare_bench(current, _VALID_NET) == []
        # ...and the section is still live for real regressions:
        current["streaming"]["ipc_reduction_factor"] = 1.0
        assert any("ipc_reduction_factor" in m
                   for m in compare_bench(current, _VALID_NET))


class TestObservabilityBackCompat:
    """Pre-streaming baselines know nothing of the new counters
    (ipc_result_bytes, shm_bytes, peak_rss_mb) or the streaming section;
    comparing against them must keep working unchanged.
    """

    def _observability(self):
        return {
            "cache_hits": 3, "cache_misses": 1, "pool_reuses": 2,
            "ipc_result_bytes": 123_456, "shm_bytes": 789,
            "peak_rss_mb": 41.5,
        }

    def test_baseline_without_new_counters_is_accepted(self):
        # Old baseline: no observability section at all.
        current = copy.deepcopy(_VALID_MAC)
        current["observability"] = self._observability()
        assert compare_bench(current, _VALID_MAC) == []

    def test_baseline_with_partial_observability_is_accepted(self):
        # Old baseline recorded *some* counters but predates the
        # IPC/RSS ones; the section is never compared either way.
        baseline = copy.deepcopy(_VALID_MAC)
        baseline["observability"] = {"cache_hits": 0, "pool_reuses": 0}
        current = copy.deepcopy(_VALID_MAC)
        current["observability"] = self._observability()
        assert compare_bench(current, baseline) == []
        assert compare_bench(copy.deepcopy(baseline), current) == []

    def test_baseline_without_streaming_section_is_accepted(self):
        # A net baseline recorded before the streaming bench existed
        # simply has nothing to say about it.
        baseline = copy.deepcopy(_VALID_NET)
        del baseline["streaming"]
        assert compare_bench(copy.deepcopy(_VALID_NET), baseline) == []


_VALID_SOAK = {
    "meta": {
        "schema_version": SCHEMA_VERSION,
        "suite": "soak",
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "test",
        "smoke": True,
        "n_workers": 1,
    },
    "sustained": {
        "epochs": 4, "aps": 3, "max_stas_per_ap": 6,
        "epoch_duration": 0.3, "shards": 3, "cumulative_users": 24,
        "frames": 400, "wall_seconds": 2.0, "frames_per_s": 200.0,
        "warm_peak_rss_mb": 40.0, "end_peak_rss_mb": 42.0,
        "rss_growth_factor": 1.05, "rss_growth_threshold": 1.5,
        "rss_flat_ok": True,
    },
    "telemetry": {
        "epochs": 4, "slo": "goodput_bps<1",
        "plain_wall_seconds": 2.0, "telemetry_wall_seconds": 2.05,
        "plain_frames_per_s": 200.0, "telemetry_frames_per_s": 195.0,
        "overhead_factor": 1.026, "overhead_threshold": 2.5,
        "overhead_ok": True, "telemetry_records": 4,
        "health_status": "ok",
    },
    "resume": {
        "epochs": 2, "resume_epoch": 1, "identical_resume": True,
        "identical_telemetry": True,
    },
}


class TestSoakSuite:
    def test_accepts_valid_soak_payload(self):
        assert validate_bench(copy.deepcopy(_VALID_SOAK)) == _VALID_SOAK

    @pytest.mark.parametrize("section,gate", [
        ("sustained", "rss_flat_ok"), ("telemetry", "overhead_ok"),
        ("resume", "identical_resume"), ("resume", "identical_telemetry"),
    ])
    def test_rejects_failed_soak_gates(self, section, gate):
        broken = copy.deepcopy(_VALID_SOAK)
        broken[section][gate] = False
        with pytest.raises(ValueError, match=gate):
            validate_bench(broken)

    def test_rejects_missing_soak_key(self):
        broken = copy.deepcopy(_VALID_SOAK)
        del broken["sustained"]["frames_per_s"]
        with pytest.raises(ValueError, match="sustained.frames_per_s"):
            validate_bench(broken)

    def test_throughput_drop_is_flagged(self):
        current = copy.deepcopy(_VALID_SOAK)
        current["sustained"]["frames_per_s"] = 100.0  # 200 -> 100
        messages = compare_bench(current, _VALID_SOAK)
        assert len(messages) == 1
        assert "sustained.frames_per_s" in messages[0]

    def test_rss_marks_are_results_not_workload(self):
        # RSS readings vary run to run: they must neither flag on their
        # own nor disguise the section as a different workload.
        current = copy.deepcopy(_VALID_SOAK)
        current["sustained"]["warm_peak_rss_mb"] = 55.0
        current["sustained"]["end_peak_rss_mb"] = 58.0
        current["sustained"]["rss_growth_factor"] = 1.055
        current["sustained"]["wall_seconds"] = 1.9
        assert compare_bench(current, _VALID_SOAK) == []
        current["sustained"]["frames_per_s"] = 50.0
        assert any("frames_per_s" in m
                   for m in compare_bench(current, _VALID_SOAK))

    def test_telemetry_throughput_drop_is_flagged(self):
        current = copy.deepcopy(_VALID_SOAK)
        current["telemetry"]["telemetry_frames_per_s"] = 50.0
        assert any("telemetry.telemetry_frames_per_s" in m
                   for m in compare_bench(current, _VALID_SOAK))

    def test_telemetry_overhead_factor_is_result_not_workload(self):
        # The factor jitters run to run; it must not disguise the section
        # as a different workload (which would silently skip comparison).
        current = copy.deepcopy(_VALID_SOAK)
        current["telemetry"]["overhead_factor"] = 1.04
        current["telemetry"]["plain_frames_per_s"] = 100.0
        assert any("plain_frames_per_s" in m
                   for m in compare_bench(current, _VALID_SOAK))

    def test_baseline_without_soak_suite_is_accepted(self):
        # compare_bench must accept older baselines that predate the
        # soak suite entirely (cross-suite payloads share no sections).
        assert compare_bench(copy.deepcopy(_VALID_SOAK), _VALID_NET) == []

    def test_baseline_without_resume_section_is_accepted(self):
        baseline = copy.deepcopy(_VALID_SOAK)
        del baseline["resume"]
        assert compare_bench(copy.deepcopy(_VALID_SOAK), baseline) == []


@pytest.mark.slow
def test_soak_smoke_bench_emits_valid_json(tmp_path):
    from repro.runtime.bench import run_soak_bench

    out = tmp_path / "BENCH_soak.json"
    payload = run_soak_bench(smoke=True, out_path=str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == on_disk
    assert payload["meta"]["suite"] == "soak"
    assert payload["sustained"]["rss_flat_ok"] is True
    assert payload["sustained"]["frames"] > 0
    assert payload["telemetry"]["overhead_ok"] is True
    assert payload["telemetry"]["health_status"] == "ok"
    assert payload["resume"]["identical_resume"] is True
    assert payload["resume"]["identical_telemetry"] is True


@pytest.mark.slow
def test_smoke_bench_emits_valid_json(tmp_path):
    out = tmp_path / "BENCH_phy.json"
    payload = run_phy_bench(smoke=True, out_path=str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == on_disk
    assert payload["meta"]["smoke"] is True
    assert payload["meta"]["suite"] == "phy"
    assert payload["viterbi"]["bit_exact_vs_reference"] is True
    assert payload["monte_carlo"]["identical_serial_parallel"] is True
    assert payload["monte_carlo"]["pool_reused"] is True


@pytest.mark.slow
def test_mac_smoke_bench_emits_valid_json(tmp_path):
    out = tmp_path / "BENCH_mac.json"
    payload = run_mac_bench(smoke=True, out_path=str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == on_disk
    assert payload["meta"]["suite"] == "mac"
    assert payload["engine"]["identical_metrics"] is True
    assert payload["sweep"]["identical_results"] is True
    assert payload["sweep"]["speedup"] > 1.0
    assert payload["trials_pool"]["identical_serial_parallel"] is True
