"""BENCH_phy.json schema validation and the bench harness smoke run."""

import copy
import json

import pytest

from repro.runtime.bench import SCHEMA_VERSION, run_phy_bench, validate_bench

_VALID = {
    "meta": {
        "schema_version": SCHEMA_VERSION,
        "python": "3.11.0",
        "numpy": "2.0.0",
        "platform": "test",
        "c_kernel": True,
        "smoke": True,
        "n_workers": 1,
    },
    "encode": {
        "n_bits": 100, "rate": "3/4", "seconds_per_frame": 1e-3,
        "mbit_per_s": 0.1,
    },
    "viterbi": {
        "n_bits": 100, "rate": "3/4", "seconds_per_frame": 1e-3,
        "mbit_per_s": 0.1, "reference_seconds_per_frame": 1e-1,
        "speedup_vs_reference": 100.0, "bit_exact_vs_reference": True,
    },
    "rx_chain": {
        "mcs": "QAM64-3/4", "payload_bytes": 500, "seconds_per_frame": 1e-2,
        "frames_per_s": 100.0,
    },
    "monte_carlo": {
        "trials": 4, "payload_bytes": 300, "serial_seconds": 1.0,
        "serial_trials_per_s": 4.0, "parallel_workers": 2,
        "parallel_seconds": 1.0, "parallel_trials_per_s": 4.0,
        "identical_serial_parallel": True,
    },
}


class TestValidateBench:
    def test_accepts_valid_payload(self):
        assert validate_bench(copy.deepcopy(_VALID)) == _VALID

    def test_rejects_missing_section(self):
        broken = copy.deepcopy(_VALID)
        del broken["viterbi"]
        with pytest.raises(ValueError, match="missing section 'viterbi'"):
            validate_bench(broken)

    def test_rejects_missing_key(self):
        broken = copy.deepcopy(_VALID)
        del broken["monte_carlo"]["parallel_trials_per_s"]
        with pytest.raises(ValueError, match="monte_carlo.parallel_trials_per_s"):
            validate_bench(broken)

    def test_rejects_inexact_decoder(self):
        broken = copy.deepcopy(_VALID)
        broken["viterbi"]["bit_exact_vs_reference"] = False
        with pytest.raises(ValueError, match="bit_exact_vs_reference"):
            validate_bench(broken)

    def test_rejects_nondeterministic_runner(self):
        broken = copy.deepcopy(_VALID)
        broken["monte_carlo"]["identical_serial_parallel"] = False
        with pytest.raises(ValueError, match="identical_serial_parallel"):
            validate_bench(broken)

    def test_rejects_wrong_schema_version(self):
        broken = copy.deepcopy(_VALID)
        broken["meta"]["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench(broken)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_bench([])


@pytest.mark.slow
def test_smoke_bench_emits_valid_json(tmp_path):
    out = tmp_path / "BENCH_phy.json"
    payload = run_phy_bench(smoke=True, out_path=str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == on_disk
    assert payload["meta"]["smoke"] is True
    assert payload["viterbi"]["bit_exact_vs_reference"] is True
    assert payload["monte_carlo"]["identical_serial_parallel"] is True
