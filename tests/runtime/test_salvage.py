"""Hardened run_trials: timeouts, worker crashes, partial salvage."""

import os
import time

import pytest

from repro.runtime import ChunkFailure, TrialRunResult, run_trials

# --- module-level trial functions (must be picklable) --------------------- #


def _well_behaved(trial_index, rng):
    return trial_index + int(rng.integers(0, 10)) * 0


def _crash_on_three(trial_index, rng):
    if trial_index == 3:
        os._exit(13)  # kill the worker process outright
    return trial_index


def _raise_on_three(trial_index, rng):
    if trial_index == 3:
        raise ValueError("trial 3 always fails")
    return trial_index


def _sleep_on_three(trial_index, rng, delay):
    if trial_index == 3:
        time.sleep(delay)
    return trial_index


class TestLegacyPathUnchanged:
    def test_plain_call_returns_plain_list(self):
        results = run_trials(_well_behaved, 8, seed=1, n_workers=1)
        assert results == list(range(8))

    def test_hardened_flags_do_not_change_results(self):
        plain = run_trials(_well_behaved, 10, seed=5, n_workers=2,
                           chunk_size=2)
        salvaged = run_trials(_well_behaved, 10, seed=5, n_workers=2,
                              chunk_size=2, salvage=True)
        assert isinstance(salvaged, TrialRunResult)
        assert salvaged.ok and salvaged.n_failed == 0
        assert salvaged.completed() == plain

    def test_serial_salvage_matches_parallel(self):
        serial = run_trials(_well_behaved, 10, seed=5, n_workers=1,
                            salvage=True)
        parallel = run_trials(_well_behaved, 10, seed=5, n_workers=2,
                              chunk_size=3, salvage=True)
        assert serial.completed() == parallel.completed()


class TestCrashSalvage:
    def test_worker_crash_salvages_other_chunks(self):
        result = run_trials(_crash_on_three, 10, seed=2, n_workers=2,
                            chunk_size=2, salvage=True, max_chunk_retries=1)
        assert isinstance(result, TrialRunResult)
        assert not result.ok
        assert result.n_failed >= 2  # at least the crashing chunk is lost
        # Every surviving trial carries its correct (ordered) result.
        for index, value in enumerate(result.results):
            if value is not None:
                assert value == index
        # The crashing chunk [2, 4) is reported as a failure.
        assert any(f.start <= 3 < f.stop for f in result.failures)
        assert "trials 2..3" in result.failure_summary()

    def test_exception_in_trial_is_reported_not_fatal(self):
        result = run_trials(_raise_on_three, 8, seed=2, n_workers=1,
                            chunk_size=2, salvage=True, max_chunk_retries=1)
        assert not result.ok
        assert all(isinstance(f, ChunkFailure) for f in result.failures)
        assert any("trial 3 always fails" in f.error for f in result.failures)
        completed = result.completed()
        assert 3 not in completed and 0 in completed

    def test_without_salvage_failures_raise(self):
        with pytest.raises(RuntimeError, match="lost 2 of 8 trials"):
            run_trials(_raise_on_three, 8, seed=2, n_workers=1, chunk_size=2,
                       chunk_timeout=30.0, max_chunk_retries=1)


class TestTimeoutSalvage:
    def test_hung_chunk_times_out_and_is_reported(self):
        result = run_trials(_sleep_on_three, 8, seed=3, n_workers=2,
                            chunk_size=2, args=(30.0,), chunk_timeout=1.5,
                            salvage=True, max_chunk_retries=1)
        assert not result.ok
        assert any(f.start <= 3 < f.stop for f in result.failures)
        assert 0 in result.completed()

    def test_fast_chunks_unaffected_by_timeout_flag(self):
        result = run_trials(_sleep_on_three, 8, seed=3, n_workers=2,
                            chunk_size=2, args=(0.0,), chunk_timeout=60.0,
                            salvage=True)
        assert result.ok
        assert result.completed() == list(range(8))


class TestDeterminism:
    def test_salvaged_results_match_legacy_values(self):
        """Chunk-level retries re-derive the same per-trial RNG children."""
        legacy = run_trials(_well_behaved, 12, seed=9, n_workers=2,
                            chunk_size=4)
        hardened = run_trials(_well_behaved, 12, seed=9, n_workers=2,
                              chunk_size=4, chunk_timeout=120.0, salvage=True)
        assert hardened.completed() == legacy
