"""The keyed result cache behind calibration: hits, bypass, invalidation."""

import json
import os

import pytest

from repro.runtime.cache import (
    ResultCache,
    cache_enabled,
    code_fingerprint,
    content_key,
    default_cache_dir,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=str(tmp_path), namespace="test")


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, cache):
        assert cache.get("k1") is None
        cache.put("k1", {"x": 1, "y": [2.5, 3]})
        assert cache.get("k1") == {"x": 1, "y": [2.5, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_survives_process_boundary_via_disk(self, cache, tmp_path):
        cache.put("k1", {"model": 0.25})
        # A fresh instance (≈ a new process) has an empty memory tier and
        # must serve the entry from disk.
        other = ResultCache(directory=str(tmp_path), namespace="test")
        assert other.get("k1") == {"model": 0.25}

    def test_get_or_compute_computes_once(self, cache):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 42}

        assert cache.get_or_compute("k", compute) == {"v": 42}
        assert cache.get_or_compute("k", compute) == {"v": 42}
        assert len(calls) == 1

    def test_clear_drops_memory_and_disk(self, cache, tmp_path):
        cache.put("k1", [1, 2])
        cache.clear()
        assert cache.get("k1") is None
        fresh = ResultCache(directory=str(tmp_path), namespace="test")
        assert fresh.get("k1") is None

    def test_corrupt_file_reads_as_miss(self, cache):
        cache.put("k1", {"ok": True})
        path = os.path.join(cache.directory, "k1.json")
        with open(path, "w") as handle:
            handle.write('{"truncated mid-wri')
        fresh = ResultCache(directory=os.path.dirname(cache.directory),
                            namespace="test")
        assert fresh.get("k1") is None

    def test_namespaces_are_isolated(self, tmp_path):
        a = ResultCache(directory=str(tmp_path), namespace="a")
        b = ResultCache(directory=str(tmp_path), namespace="b")
        a.put("k", "from-a")
        assert b.get("k") is None

    def test_disk_entry_is_plain_json(self, cache):
        cache.put("k1", {"x": 1})
        with open(os.path.join(cache.directory, "k1.json")) as handle:
            assert json.load(handle) == {"x": 1}

    def test_no_cache_env_bypasses_everything(self, cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        cache.put("k1", {"x": 1})
        assert cache.get("k1") is None
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert cache_enabled()
        # Nothing was stored while disabled.
        assert cache.get("k1") is None


class TestKeys:
    def test_content_key_is_deterministic_and_order_insensitive(self):
        a = content_key("ns", {"x": 1, "y": 2}, fingerprint="f")
        b = content_key("ns", {"y": 2, "x": 1}, fingerprint="f")
        assert a == b

    def test_content_key_separates_inputs(self):
        base = content_key("ns", {"x": 1}, fingerprint="f")
        assert content_key("ns", {"x": 2}, fingerprint="f") != base
        assert content_key("other", {"x": 1}, fingerprint="f") != base
        assert content_key("ns", {"x": 1}, fingerprint="g") != base

    def test_code_fingerprint_stable_and_module_sensitive(self):
        a = code_fingerprint("repro.mac.error_model")
        assert a == code_fingerprint("repro.mac.error_model")
        assert a != code_fingerprint("repro.util")

    def test_code_fingerprint_accepts_module_objects(self):
        import repro.mac.error_model as module

        assert code_fingerprint(module) == code_fingerprint("repro.mac.error_model")

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)


class TestCalibrationCaching:
    def test_second_calibration_is_a_cache_hit(self, tmp_path, monkeypatch):
        import repro.analysis.calibration as calibration

        monkeypatch.setattr(
            calibration, "_CACHE",
            ResultCache(directory=str(tmp_path), namespace="calibration"),
        )
        first = calibration.calibrate_error_model(
            payload_bytes=300, trials=2, coding_gain=20.0
        )
        before = calibration._CACHE.hits
        second = calibration.calibrate_error_model(
            payload_bytes=300, trials=2, coding_gain=20.0
        )
        assert calibration._CACHE.hits == before + 1
        assert first == second  # dataclass equality: every fitted float

    def test_cache_false_recomputes_but_matches(self, tmp_path, monkeypatch):
        import repro.analysis.calibration as calibration

        monkeypatch.setattr(
            calibration, "_CACHE",
            ResultCache(directory=str(tmp_path), namespace="calibration"),
        )
        cached = calibration.calibrate_error_model(payload_bytes=300, trials=2)
        uncached = calibration.calibrate_error_model(
            payload_bytes=300, trials=2, cache=False
        )
        assert cached == uncached

    def test_different_inputs_get_different_entries(self, tmp_path, monkeypatch):
        import repro.analysis.calibration as calibration

        monkeypatch.setattr(
            calibration, "_CACHE",
            ResultCache(directory=str(tmp_path), namespace="calibration"),
        )
        calibration.calibrate_error_model(payload_bytes=300, trials=2)
        misses = calibration._CACHE.misses
        calibration.calibrate_error_model(payload_bytes=400, trials=2)
        assert calibration._CACHE.misses == misses + 1
