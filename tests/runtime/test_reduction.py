"""Worker-side reduction: exact associativity and the run_trials contract."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    TraceRecorder,
    disable_metrics,
    enable_metrics,
    set_recorder,
)
from repro.runtime import (
    ExactSum,
    MergeableHistogram,
    StreamMoments,
    run_trials,
    shutdown_pools,
)

# Floats that stress rounding: huge/tiny magnitudes, cancellation.
_NASTY_FLOATS = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e18, max_value=1e18
)


@pytest.fixture(autouse=True)
def _pristine_runtime():
    shutdown_pools()
    set_recorder(None)
    disable_metrics()
    yield
    shutdown_pools()
    set_recorder(None)
    disable_metrics()


class TestExactSum:
    def test_matches_fsum(self):
        values = [1e16, 1.0, -1e16, 0.5, 1e-8, -0.25]
        acc = ExactSum(values)
        assert acc.value() == math.fsum(values)

    def test_plain_sum_would_differ(self):
        # The canonical case exact summation exists for.
        values = [1e16, 1.0, -1e16]
        assert sum(values) != math.fsum(values)
        assert ExactSum(values).value() == 1.0

    def test_rejects_non_finite(self):
        acc = ExactSum()
        with pytest.raises(ValueError):
            acc.add(float("nan"))
        with pytest.raises(ValueError):
            acc.add(float("inf"))

    def test_round_trip(self):
        acc = ExactSum([1e16, 1.0, -1e16])
        clone = ExactSum.from_dict(acc.to_dict())
        assert clone.value() == acc.value()

    @given(st.lists(_NASTY_FLOATS, max_size=40), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_any_partition_any_order_is_bit_identical(self, values, rng):
        single = ExactSum(values)
        shuffled = list(values)
        rng.shuffle(shuffled)
        # Random partition into accumulators, merged in shuffled order.
        parts = []
        i = 0
        while i < len(shuffled):
            width = rng.randint(1, len(shuffled) - i)
            parts.append(ExactSum(shuffled[i:i + width]))
            i += width
        rng.shuffle(parts)
        merged = ExactSum()
        for part in parts:
            merged.merge(part)
        assert merged.value() == single.value()


class TestStreamMoments:
    def test_mean_and_variance(self):
        m = StreamMoments()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            m.observe(v)
        assert m.n == 8
        assert m.mean() == 5.0
        assert m.variance() == 4.0
        assert m.stddev() == 2.0

    def test_empty(self):
        m = StreamMoments()
        assert (m.n, m.mean(), m.variance()) == (0, 0.0, 0.0)

    def test_round_trip(self):
        m = StreamMoments()
        for v in (1.5, -2.25, 1e12):
            m.observe(v)
        clone = StreamMoments.from_dict(m.to_dict())
        assert (clone.n, clone.mean(), clone.variance()) == (
            m.n, m.mean(), m.variance())

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), max_size=30),
           st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_merge_order_independent(self, values, rng):
        single = StreamMoments()
        for v in values:
            single.observe(v)
        shuffled = list(values)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        a, b = StreamMoments(), StreamMoments()
        for v in shuffled[:half]:
            a.observe(v)
        for v in shuffled[half:]:
            b.observe(v)
        b.merge(a)
        assert b.n == single.n
        assert b.mean() == single.mean()
        assert b.variance() == single.variance()


class TestMergeableHistogram:
    def test_bucketing(self):
        h = MergeableHistogram([1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 1.9, 3.0, 4.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 2]
        assert h.total == 6

    def test_merge_requires_equal_edges(self):
        with pytest.raises(ValueError):
            MergeableHistogram([1.0]).merge(MergeableHistogram([2.0]))

    def test_merge_equals_single_shot(self):
        edges = [0.0, 10.0, 20.0]
        values = [random.Random(7).uniform(-5, 30) for _ in range(50)]
        single = MergeableHistogram(edges)
        for v in values:
            single.observe(v)
        a, b = MergeableHistogram(edges), MergeableHistogram(edges)
        for v in values[:20]:
            a.observe(v)
        for v in values[20:]:
            b.observe(v)
        assert a.merge(b).counts == single.counts

    def test_round_trip(self):
        h = MergeableHistogram([1.0, 2.0])
        h.observe(1.5)
        assert MergeableHistogram.from_dict(h.to_dict()).counts == h.counts

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            MergeableHistogram([])
        with pytest.raises(ValueError):
            MergeableHistogram([2.0, 1.0])


# --------------------------------------------------------------------------- #
# run_trials(reduce_fn=...) — module-level so everything pickles.
# --------------------------------------------------------------------------- #


def _draw(trial_index, rng, scale):
    return float(rng.random()) * scale


def _draw_item(trial_index, rng, item, scale):
    return (item, float(rng.random()) * scale)


def _span_items(start, stop):
    # Lazy trial source: items derive from the requested span alone.
    return [f"cell{i}" for i in range(start, stop)]


def _fold_sum(acc, trial_index, result):
    acc.add(result)
    return acc


def _fold_tagged(acc, trial_index, result):
    acc.add(result[1])
    return acc


def _fold_indices(acc, trial_index, result):
    acc.append(trial_index)
    return acc


def _merge_lists(a, b):
    return a + b


def _draw_batch(start, rngs, scale):
    return [float(rng.random()) * scale for rng in rngs]


def _wide_trial(trial_index, rng, scale):
    # A realistically wide per-trial record (what a deployment cell
    # ships): reduction exists to keep payloads like this off the pipe.
    return {f"metric_{k}": float(rng.random()) * scale for k in range(24)}


def _fold_wide(acc, trial_index, result):
    acc.add(result["metric_0"])
    return acc


class TestRunTrialsReduce:
    def _oracle(self, n=16, scale=3.0, seed=11):
        results = run_trials(_draw, n, seed=seed, n_workers=1, args=(scale,))
        oracle = ExactSum(results)
        return results, oracle.value()

    def test_reduced_matches_scalar_oracle_any_workers(self):
        _, expected = self._oracle()
        for kwargs in ({"n_workers": 1}, {"n_workers": 2},
                       {"n_workers": 4, "chunk_size": 3},
                       {"n_workers": 2, "chunk_size": 1}):
            acc = run_trials(_draw, 16, seed=11, args=(3.0,),
                             reduce_fn=_fold_sum, reduce_init=ExactSum,
                             **kwargs)
            assert isinstance(acc, ExactSum)
            assert acc.value() == expected, kwargs

    def test_trial_source_generates_items_per_chunk(self):
        expected = run_trials(_draw_item, 10, seed=3, n_workers=1,
                              args=(2.0,), trial_source=_span_items)
        assert [item for item, _ in expected] == [f"cell{i}" for i in range(10)]
        for n_workers in (2, 4):
            got = run_trials(_draw_item, 10, seed=3, n_workers=n_workers,
                             chunk_size=3, args=(2.0,),
                             trial_source=_span_items)
            assert got == expected

    def test_trial_source_with_reduction(self):
        plain = run_trials(_draw_item, 12, seed=5, n_workers=1, args=(1.0,),
                           trial_source=_span_items)
        expected = ExactSum(v for _, v in plain).value()
        acc = run_trials(_draw_item, 12, seed=5, n_workers=3, chunk_size=4,
                         args=(1.0,), trial_source=_span_items,
                         reduce_fn=_fold_tagged, reduce_init=ExactSum)
        assert acc.value() == expected

    def test_custom_merge_fn_preserves_trial_order(self):
        indices = run_trials(_draw, 9, seed=0, n_workers=3, chunk_size=2,
                             args=(1.0,), reduce_fn=_fold_indices,
                             reduce_init=list, merge_fn=_merge_lists)
        assert indices == list(range(9))

    def test_batch_fn_with_reduction(self):
        _, expected = self._oracle()
        acc = run_trials(_draw, 16, seed=11, n_workers=2, chunk_size=4,
                         args=(3.0,), batch_fn=_draw_batch,
                         reduce_fn=_fold_sum, reduce_init=ExactSum)
        assert acc.value() == expected

    def test_zero_trials_returns_fresh_accumulator(self):
        acc = run_trials(_draw, 0, seed=0, n_workers=2, args=(1.0,),
                         reduce_fn=_fold_sum, reduce_init=ExactSum)
        assert isinstance(acc, ExactSum)
        assert acc.value() == 0.0

    def test_reduce_requires_init(self):
        with pytest.raises(ValueError, match="reduce_init"):
            run_trials(_draw, 4, seed=0, n_workers=1, args=(1.0,),
                       reduce_fn=_fold_sum)

    def test_init_without_reduce_rejected(self):
        with pytest.raises(ValueError, match="reduce_fn"):
            run_trials(_draw, 4, seed=0, n_workers=1, args=(1.0,),
                       reduce_init=ExactSum)

    def test_reduce_incompatible_with_hardened_path(self):
        for kwargs in ({"salvage": True}, {"chunk_timeout": 30.0}):
            with pytest.raises(ValueError, match="salvage|timeout"):
                run_trials(_draw, 4, seed=0, n_workers=1, args=(1.0,),
                           reduce_fn=_fold_sum, reduce_init=ExactSum,
                           **kwargs)

    def test_traced_runs_bypass_worker_reduction_same_result(self):
        # Tracing forces per-trial results over the pipe (so the trace
        # stays byte-identical); the parent folds instead. The final
        # accumulator must not change.
        _, expected = self._oracle()
        recorder = TraceRecorder(None, deterministic=True)
        set_recorder(recorder)
        try:
            acc = run_trials(_draw, 16, seed=11, n_workers=2, chunk_size=4,
                             args=(3.0,), reduce_fn=_fold_sum,
                             reduce_init=ExactSum)
        finally:
            set_recorder(None)
        assert acc.value() == expected

    def test_ipc_bytes_counted_and_smaller_when_reduced(self):
        registry = enable_metrics()
        run_trials(_wide_trial, 64, seed=2, n_workers=2, chunk_size=8,
                   args=(1.0,))
        plain_bytes = registry.counter("runtime.ipc_result_bytes").value
        disable_metrics()
        shutdown_pools()

        registry = enable_metrics()
        run_trials(_wide_trial, 64, seed=2, n_workers=2, chunk_size=8,
                   args=(1.0,), reduce_fn=_fold_wide, reduce_init=ExactSum)
        reduced_bytes = registry.counter("runtime.ipc_result_bytes").value
        disable_metrics()

        assert plain_bytes > 0
        assert 0 < reduced_bytes < plain_bytes / 5
