"""Zero-copy shared payloads: descriptors, pool keying, segment lifecycle."""

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.runtime import trials
from repro.runtime.shm import (
    MIN_SHARED_BYTES,
    SharedPayload,
    pack_payload,
    payload_fingerprint,
    shm_supported,
)
from repro.runtime.trials import (
    persistent_pool,
    run_trials,
    shared_payload,
    shutdown_pools,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="no multiprocessing.shared_memory")


def _segments() -> set:
    """Names of the live shared-memory segments on this box."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: fall back to name tracking only
        return set()


def _big_payload(fill=1.0):
    return {
        "table": np.full(2048, fill),
        "nested": [np.arange(1024, dtype=np.int64), "label"],
        "scalar": 7,
    }


def _lookup_trial(trial_index, rng, scale):
    payload = shared_payload()
    return float(payload["table"][trial_index]) * scale + payload["scalar"]


def _boom_trial(trial_index, rng):
    if trial_index >= 2:
        raise ValueError("boom")
    return trial_index


class TestPackPayload:
    def test_no_arrays_means_no_descriptor(self):
        assert pack_payload({"config": [1, 2, 3], "name": "x"}) is None

    def test_small_arrays_keep_plain_pickle(self):
        tiny = {"a": np.arange(8)}
        assert tiny["a"].nbytes < MIN_SHARED_BYTES
        assert pack_payload(tiny) is None

    def test_object_arrays_are_not_lifted(self):
        assert pack_payload({"a": np.array([object()] * 4096)}) is None

    def test_descriptor_round_trip(self):
        payload = _big_payload()
        descriptor = pack_payload(payload)
        assert isinstance(descriptor, SharedPayload)
        try:
            clone = pickle.loads(pickle.dumps(descriptor))
            assert not clone.is_owner
            rebuilt = clone.materialize()
            assert np.array_equal(rebuilt["table"], payload["table"])
            assert np.array_equal(rebuilt["nested"][0], payload["nested"][0])
            assert rebuilt["nested"][1] == "label"
            assert rebuilt["scalar"] == 7
            assert not rebuilt["table"].flags.writeable
            # Zero-copy: the views must be backed by the mapping, not pickle.
            assert clone.materialize() is rebuilt
        finally:
            descriptor.release()

    def test_release_is_owner_only_and_idempotent(self):
        descriptor = pack_payload(_big_payload())
        name = descriptor.name
        clone = pickle.loads(pickle.dumps(descriptor))
        clone.materialize()
        clone.release()  # non-owner: must be a no-op
        assert name in _segments() or not _segments()
        descriptor.release()
        descriptor.release()  # idempotent
        assert name not in _segments()

    def test_fingerprint_tracks_content_not_identity(self):
        a = _big_payload()
        b = _big_payload()
        c = _big_payload(fill=2.0)
        assert payload_fingerprint(a) == payload_fingerprint(b)
        assert payload_fingerprint(a) != payload_fingerprint(c)


class TestSegmentLifecycle:
    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_worker_reads_through_shared_segment(self):
        payload = _big_payload()
        results = run_trials(_lookup_trial, 6, seed=1, n_workers=2,
                             args=(2.0,), shared=payload)
        assert results == [payload["table"][i] * 2.0 + 7 for i in range(6)]

    def test_pool_retirement_unlinks_segment(self):
        before = _segments()
        run_trials(_lookup_trial, 4, seed=1, n_workers=2, args=(1.0,),
                   shared=_big_payload())
        assert len(_segments() - before) == 1  # pool holds its segment
        shutdown_pools()
        assert _segments() - before == set()

    def test_new_fingerprint_retires_old_segment(self):
        before = _segments()
        run_trials(_lookup_trial, 4, seed=1, n_workers=2, args=(1.0,),
                   shared=_big_payload(fill=1.0))
        run_trials(_lookup_trial, 4, seed=1, n_workers=2, args=(1.0,),
                   shared=_big_payload(fill=2.0))
        # The stale pool and its segment are gone; only the live one maps.
        assert len(_segments() - before) == 1
        shutdown_pools()
        assert _segments() - before == set()

    def test_disposable_pool_releases_segment(self):
        before = _segments()
        run_trials(_lookup_trial, 4, seed=1, n_workers=2, args=(1.0,),
                   shared=_big_payload(), reuse_pool=False)
        assert _segments() - before == set()

    def test_hardened_retry_releases_segments(self):
        before = _segments()
        outcome = run_trials(_boom_trial, 4, seed=1, n_workers=2,
                             chunk_size=1, salvage=True, max_chunk_retries=1,
                             shared=_big_payload())
        assert [f for f in outcome.failures]  # the bad chunks were lost
        assert outcome.results[:2] == [0, 1]
        assert _segments() - before == set()


class TestSpawnStartMethod:
    def test_spawn_workers_match_serial(self, monkeypatch):
        shutdown_pools()
        monkeypatch.setattr(
            trials, "_mp_context",
            lambda: multiprocessing.get_context("spawn"))
        try:
            payload = _big_payload()
            parallel = run_trials(_lookup_trial, 4, seed=9, n_workers=2,
                                  args=(1.5,), shared=payload)
        finally:
            shutdown_pools()
        serial = run_trials(_lookup_trial, 4, seed=9, n_workers=1,
                            args=(1.5,), shared=payload)
        assert parallel == serial
