"""Hypothesis property tests on cross-cutting system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CarpoolReceiver,
    CarpoolTransmitter,
    MacAddress,
    SubframeSpec,
)
from repro.core.sequential_ack import AckTiming, SequentialAckPlan
from repro.core.side_channel import ONE_BIT_SCHEME, TWO_BIT_SCHEME
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols.base import AggregationLimits
from repro.mac.protocols.multi_receiver import select_multi_receiver_batch
from repro.phy import PhyReceiver, PhyTransmitter, MCS_TABLE
from repro.util.rng import RngStream

TIMING = AckTiming(ack_duration=44e-6, sifs=10e-6)


class TestPhyPipelineProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.binary(min_size=1, max_size=300), st.integers(0, 7), st.booleans())
    def test_loopback_identity(self, payload, mcs_idx, coded):
        """Any payload × any MCS × either coding mode survives loopback."""
        mcs = MCS_TABLE[mcs_idx]
        frame = PhyTransmitter(mcs, coded=coded).build_frame(payload)
        rx = PhyReceiver(coded=coded).receive(frame.symbols)
        assert rx.payload == payload
        assert rx.sig.mcs is mcs

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(1, 400), min_size=1, max_size=8, unique=False),
           st.integers(0, 2**16))
    def test_carpool_loopback_all_receivers(self, sizes, seed):
        """Every receiver of any ≤8-subframe Carpool frame gets exactly its
        own bytes back on a clean channel."""
        rng = np.random.default_rng(seed)
        mcs = MCS_TABLE[2]  # QPSK-1/2
        specs = [
            SubframeSpec(MacAddress.from_int(i),
                         bytes(rng.integers(0, 256, s, dtype=np.uint8)), mcs)
            for i, s in enumerate(sizes)
        ]
        frame = CarpoolTransmitter(coded=True).build_frame(specs)
        for spec in specs:
            result = CarpoolReceiver(spec.receiver, coded=True).receive(frame.symbols)
            assert result.num_subframes_seen == len(sizes)
            payload = result.payload_for(
                frame.subframe_for(spec.receiver).position
            )
            assert payload == spec.payload


class TestSideChannelProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.sampled_from([ONE_BIT_SCHEME, TWO_BIT_SCHEME]),
           st.floats(min_value=-0.3, max_value=0.3))
    def test_round_trip_under_any_drift_rate(self, seed, scheme, drift_per_symbol):
        """Differential decoding is exact for any constant inherent-drift
        rate below half the decision distance (±45°/2 for the 2-bit map)."""
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 40 * scheme.bits_per_symbol, dtype=np.uint8)
        injected = scheme.encode_phases(bits)
        n = injected.size
        drift = drift_per_symbol * np.arange(1, n + 1)
        measured = np.angle(np.exp(1j * (injected + drift)))
        decoded = scheme.decode_phases(measured, reference_phase=0.0)
        np.testing.assert_array_equal(decoded, bits)


class TestSequentialAckProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8))
    def test_nav_consistency(self, n):
        """Eq. (1) equals the actual end of the ACK sequence, the last ACK
        carries NAV 0, and slots never overlap — for every receiver count."""
        plan = SequentialAckPlan(n, TIMING)
        assert plan.nav_data(0.0) == pytest.approx(plan.sequence_duration())
        assert plan.ack_nav(n - 1) == 0.0
        for i in range(n - 1):
            assert plan.ack_end_time(i) < plan.ack_start_time(i + 1)
            # Each ACK's NAV covers exactly the remaining sequence.
            remaining = plan.sequence_duration() - plan.ack_end_time(i)
            assert plan.ack_nav(i) == pytest.approx(remaining)


class TestAggregationProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 2000),
                              st.booleans()), min_size=1, max_size=40),
           st.integers(1, 8))
    def test_selector_conserves_frames(self, frames_spec, max_receivers):
        """The multi-receiver selector never loses, duplicates or invents
        frames, and always respects every limit."""
        node = Node("ap", DEFAULT_PARAMETERS, RngStream(0).child("ap"), is_ap=True)
        frames = [
            MacFrame(destination=f"sta{d}", size_bytes=s, arrival_time=0.001 * i,
                     delay_sensitive=sens)
            for i, (d, s, sens) in enumerate(frames_spec)
        ]
        for frame in frames:
            node.enqueue(frame)
        limits = AggregationLimits(
            max_frame_bytes=4000, max_receivers=max_receivers,
            max_subframe_bytes=3000, max_mpdus=10,
        )
        batch = select_multi_receiver_batch(node, limits)
        taken = [f for group in batch.values() for f in group]
        ids_taken = {f.frame_id for f in taken}
        ids_left = {f.frame_id for f in node.queue}
        assert ids_taken | ids_left == {f.frame_id for f in frames}
        assert not ids_taken & ids_left
        assert len(taken) >= 1  # head frame always ships
        assert len(batch) <= max_receivers
        for dest, group in batch.items():
            assert all(f.destination == dest for f in group)
            assert len(group) <= limits.max_mpdus
